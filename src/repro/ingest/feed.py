"""The append-only event feed behind the streaming ingester.

A feed is a single JSONL file: one event per line, appended and fsynced by
:class:`FeedWriter`, consumed by byte offset with :func:`read_feed`.  Each
line is a small JSON object::

    {"trace": "session-1", "activity": "search", "ts": 17.0, "at": 1754500000.12}

``trace``/``activity``/``ts`` are the event itself (the same triple the
batch CSV form carries); ``at`` is the wall-clock *append* instant stamped
by the writer, which is what the end-to-end freshness metric measures
against (event appended -> visible in ``detect()``).  Events read from a
source that carries no append stamp simply have ``appended_at = None`` and
are excluded from freshness accounting.

Tail semantics: a reader only ever consumes *complete* lines.  A torn
trailing line -- a producer killed mid-``write(2)``, or a reader racing an
append -- is left in place and re-read on the next poll once its newline
lands, so the (offset, line) pairs every reader observes are identical
regardless of poll timing.  That invariant is what makes the byte-offset
checkpoint of :mod:`repro.ingest.checkpoint` a complete description of
ingest progress.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import IO, Iterable

from repro.core.model import Event

__all__ = ["FeedEvent", "FeedFormatError", "FeedWriter", "feed_size", "read_feed"]


class FeedFormatError(ValueError):
    """A complete feed line could not be parsed as an event."""


@dataclass(frozen=True)
class FeedEvent:
    """One event read from a feed, with its optional append stamp."""

    trace_id: str
    activity: str
    timestamp: float
    appended_at: float | None = None

    def to_event(self) -> Event:
        return Event(self.trace_id, self.activity, self.timestamp)


class FeedWriter:
    """Appends events to a feed file, stamping the append instant.

    Every :meth:`append` call flushes and fsyncs, so an acknowledged append
    survives a producer crash; the trailing line of an *unacknowledged*
    append may be torn, which readers never consume.  Opening a feed whose
    previous producer died mid-write truncates that torn tail back to the
    last complete line, so new appends never concatenate onto torn bytes.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._repair_torn_tail(path)
        self._file: IO[bytes] = open(path, "ab")

    @staticmethod
    def _repair_torn_tail(path: str) -> None:
        try:
            fh = open(path, "r+b")
        except FileNotFoundError:
            return
        with fh:
            size = fh.seek(0, os.SEEK_END)
            if size == 0:
                return
            fh.seek(size - 1)
            if fh.read(1) == b"\n":
                return
            # Walk back to the last newline (bounded scan from the end).
            keep = 0
            step = 4096
            position = size
            while position > 0:
                chunk_start = max(0, position - step)
                fh.seek(chunk_start)
                chunk = fh.read(position - chunk_start)
                newline = chunk.rfind(b"\n")
                if newline != -1:
                    keep = chunk_start + newline + 1
                    break
                position = chunk_start
            fh.truncate(keep)

    def append(self, events: Iterable[Event], stamp: bool = True) -> int:
        """Append events (timestamps required); returns the count written."""
        now = time.time()
        count = 0
        lines: list[bytes] = []
        for event in events:
            if event.timestamp is None:
                raise ValueError(f"feed events need timestamps: {event!r}")
            record: dict[str, object] = {
                "trace": event.trace_id,
                "activity": event.activity,
                "ts": float(event.timestamp),
            }
            if stamp:
                record["at"] = now
            lines.append(json.dumps(record, separators=(",", ":")).encode("utf-8"))
            count += 1
        if lines:
            self._file.write(b"\n".join(lines) + b"\n")
            self._file.flush()
            os.fsync(self._file.fileno())
        return count

    def tell(self) -> int:
        """Current end-of-feed byte offset."""
        return self._file.tell()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FeedWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def feed_size(path: str) -> int:
    """Feed length in bytes (0 for a feed that does not exist yet)."""
    try:
        return os.path.getsize(path)
    except FileNotFoundError:
        return 0


def _parse_line(raw: bytes, offset: int) -> FeedEvent:
    try:
        record = json.loads(raw)
        return FeedEvent(
            trace_id=str(record["trace"]),
            activity=str(record["activity"]),
            timestamp=float(record["ts"]),
            appended_at=(
                float(record["at"]) if record.get("at") is not None else None
            ),
        )
    except (ValueError, KeyError, TypeError) as exc:
        raise FeedFormatError(
            f"bad feed line at byte {offset}: {raw[:120]!r} ({exc})"
        ) from exc


def read_feed(
    path: str, offset: int = 0, max_events: int | None = None
) -> tuple[list[FeedEvent], int]:
    """Read up to ``max_events`` complete events starting at ``offset``.

    Returns ``(events, new_offset)`` where ``new_offset`` points just past
    the last consumed line -- the value to checkpoint.  A torn trailing
    line is not consumed (its bytes stay beyond ``new_offset``), and a feed
    that does not exist yet reads as empty: tailing a feed before its
    producer starts is not an error.
    """
    if offset < 0:
        raise ValueError("feed offset must be non-negative")
    events: list[FeedEvent] = []
    try:
        fh = open(path, "rb")
    except FileNotFoundError:
        return events, offset
    with fh:
        fh.seek(offset)
        position = offset
        while max_events is None or len(events) < max_events:
            raw = fh.readline()
            if not raw.endswith(b"\n"):
                break  # torn or absent tail: wait for the newline
            line = raw.strip()
            if line:
                events.append(_parse_line(line, position))
            position += len(raw)
    return events, position
