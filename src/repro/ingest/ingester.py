"""The tailing ingester: append-only feed -> live index, in micro-batches.

``TailIngester`` turns the batch ``update()`` path into a continuous
pipeline.  One :meth:`~TailIngester.step` is one micro-batch:

1. read up to ``batch_events`` complete events from the feed, starting at
   the durable checkpoint offset (:mod:`repro.ingest.feed` guarantees torn
   tails are never consumed);
2. drop events the index already holds (:func:`drop_indexed` -- this is
   what makes crash replay convergent, see below);
3. apply the rest through the sink -- a live engine
   (:class:`EngineSink`: single-store or sharded, queries keep serving
   throughout because ``update()`` never stops the world) or a running
   query service (:class:`ServiceSink`: the ``ingest`` op with its
   backpressure seam);
4. observe end-to-end freshness for every stamped event (append instant ->
   batch visible);
5. persist the checkpoint.

Crash recovery is replay-to-converge: the checkpoint is written strictly
*after* the batch is applied, so a kill at any instant leaves the
checkpoint at or behind the index.  Restarting replays the suffix since
the checkpoint; step 2 filters every event whose timestamp is at or before
its trace's indexed tail, so the replayed prefix is a no-op and the final
index state equals a clean batch build over the same feed
(:mod:`repro.faults.ingest` proves this under seeded kills).

The ingester registers with the process metrics registry: batch/event/
dedup counters, an ingest byte-lag gauge, and the freshness histogram of
:mod:`repro.ingest.freshness` all appear in ``python -m repro metrics``
style expositions (docs/METRICS.md).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.ingest.checkpoint import Checkpoint, load_checkpoint, store_checkpoint
from repro.ingest.feed import FeedEvent, feed_size, read_feed
from repro.ingest.freshness import FreshnessTracker
from repro.obs.registry import REGISTRY

__all__ = [
    "EngineSink",
    "IngestStats",
    "ServiceSink",
    "TailIngester",
    "drop_indexed",
]


def drop_indexed(
    events: Sequence[Any], tail_of: Callable[[str], float | None]
) -> tuple[list[Any], int]:
    """Split a batch into (fresh events, dropped count) against the index.

    ``tail_of(trace_id)`` returns the trace's last indexed timestamp (or
    ``None`` for an unknown trace).  An event at or before its trace's tail
    is already indexed -- a crash-replay duplicate, or a late arrival the
    append-only trace order (Definition 2.1) would reject -- and is
    dropped.  Each trace's tail is read once and then advanced in memory,
    so a batch whose events straddle the tail keeps its fresh suffix.
    """
    tails: dict[str, float | None] = {}
    fresh: list[Any] = []
    dropped = 0
    for event in events:
        trace_id = event.trace_id
        if trace_id not in tails:
            tails[trace_id] = tail_of(trace_id)
        tail = tails[trace_id]
        if tail is not None and event.timestamp <= tail:
            dropped += 1
            continue
        tails[trace_id] = event.timestamp
        fresh.append(event)
    return fresh, dropped


class EngineSink:
    """Applies micro-batches to a live engine (single-store or sharded).

    ``engine`` is anything with the ``SequenceIndex`` write surface:
    ``indexed_tail()``/``update()``.  Queries on the same engine keep
    serving while batches apply -- the engine's write-generation keyed
    caches make post-batch queries see the new events immediately.
    """

    def __init__(self, engine: Any, partition: str = "") -> None:
        self.engine = engine
        self.partition = partition

    def apply(self, events: list[FeedEvent]) -> tuple[int, int]:
        """Apply one deduplicated batch; returns (applied, dropped)."""
        fresh, dropped = drop_indexed(events, self.engine.indexed_tail)
        if fresh:
            self.engine.update(
                [event.to_event() for event in fresh], self.partition
            )
        return len(fresh), dropped


class ServiceSink:
    """Ships micro-batches to a running query service over the ingest op.

    The server applies the same replay filter (``dedup=True``), so remote
    ingest keeps the convergence guarantee.  Backpressure (``overloaded``)
    is retried with exponential backoff up to ``max_retries`` times -- the
    service's bounded ingest pool slows this producer down instead of
    dropping its events.
    """

    def __init__(
        self,
        client: Any,
        partition: str = "",
        max_retries: int = 8,
        retry_wait_s: float = 0.05,
    ) -> None:
        self.client = client
        self.partition = partition
        self.max_retries = max_retries
        self.retry_wait_s = retry_wait_s

    def apply(self, events: list[FeedEvent]) -> tuple[int, int]:
        from repro.service.client import ServiceError

        batch = [
            (event.trace_id, event.activity, event.timestamp)
            for event in events
        ]
        wait = self.retry_wait_s
        for attempt in range(self.max_retries + 1):
            try:
                result = self.client.ingest(
                    batch, partition=self.partition, dedup=True
                )
            except ServiceError as exc:
                if exc.code != "overloaded" or attempt == self.max_retries:
                    raise
                time.sleep(wait)
                wait *= 2
            else:
                return (
                    int(result.get("events_indexed", 0)),
                    int(result.get("events_deduped", 0)),
                )
        raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class IngestStats:
    """Progress snapshot of one ingester (cumulative across restarts)."""

    offset: int
    batches: int
    events_read: int
    events_applied: int
    events_deduped: int
    lag_bytes: int


class TailIngester:
    """Tails one feed into one sink with durable micro-batch checkpoints."""

    def __init__(
        self,
        feed_path: str,
        sink: Any,
        checkpoint_path: str,
        batch_events: int = 256,
        poll_interval_s: float = 0.05,
        name: str | None = None,
        pre_apply_hook: Callable[[int], None] | None = None,
        pre_checkpoint_hook: Callable[[int], None] | None = None,
    ) -> None:
        if batch_events <= 0:
            raise ValueError("batch_events must be positive")
        self.feed_path = feed_path
        self.sink = sink
        self.checkpoint_path = checkpoint_path
        self.batch_events = batch_events
        self.poll_interval_s = poll_interval_s
        #: fault-injection seams for the crash-replay harness: called with
        #: the batch ordinal just before apply / just before checkpoint
        self.pre_apply_hook = pre_apply_hook
        self.pre_checkpoint_hook = pre_checkpoint_hook
        self.freshness = FreshnessTracker()
        self._lock = threading.Lock()
        self._checkpoint = load_checkpoint(checkpoint_path)
        self._events_read = 0
        self._events_applied = 0
        self._events_deduped = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._obs_handle: int | None = REGISTRY.register(
            {"ingest": name if name is not None else feed_path}, self._collect
        )

    # -- metrics ------------------------------------------------------------------

    def _collect(self) -> dict[str, float]:
        stats = self.stats()
        samples = {
            "repro_ingest_batches_total": stats.batches,
            "repro_ingest_events_total": stats.events_applied,
            "repro_ingest_deduped_total": stats.events_deduped,
            "repro_ingest_lag_bytes": stats.lag_bytes,
        }
        samples.update(self.freshness.samples())
        return samples

    def stats(self) -> IngestStats:
        with self._lock:
            checkpoint = self._checkpoint
            read = self._events_read
            applied = self._events_applied
            deduped = self._events_deduped
        return IngestStats(
            offset=checkpoint.offset,
            batches=checkpoint.batches,
            events_read=read,
            events_applied=applied,
            events_deduped=deduped,
            lag_bytes=max(0, feed_size(self.feed_path) - checkpoint.offset),
        )

    # -- the micro-batch loop -----------------------------------------------------

    def step(self) -> int:
        """Consume one micro-batch; returns the number of events read.

        Returns 0 when the feed holds no complete unconsumed line -- the
        caller decides whether to poll again (:meth:`run`) or stop
        (:meth:`drain`).
        """
        checkpoint = self._checkpoint
        events, new_offset = read_feed(
            self.feed_path, checkpoint.offset, self.batch_events
        )
        if new_offset == checkpoint.offset:
            return 0
        batch_no = checkpoint.batches
        if events:
            if self.pre_apply_hook is not None:
                self.pre_apply_hook(batch_no)
            applied, dropped = self.sink.apply(events)
            visible_at = time.time()
            if applied and not dropped:
                # Replayed batches (dropped > 0) are excluded: their events
                # became visible before the crash, so re-observing them now
                # would record the outage, not the pipeline's freshness.
                for event in events:
                    if event.appended_at is not None:
                        self.freshness.observe(visible_at - event.appended_at)
        else:
            applied = dropped = 0  # only blank lines: just advance
        if self.pre_checkpoint_hook is not None:
            self.pre_checkpoint_hook(batch_no)
        advanced = Checkpoint(
            offset=new_offset,
            batches=checkpoint.batches + 1,
            events=checkpoint.events + applied,
        )
        store_checkpoint(self.checkpoint_path, advanced)
        with self._lock:
            self._checkpoint = advanced
            self._events_read += len(events)
            self._events_applied += applied
            self._events_deduped += dropped
        return len(events)

    def drain(self) -> IngestStats:
        """Consume every complete event currently in the feed, then stop."""
        while not self._stop.is_set() and self.step() > 0:
            pass
        return self.stats()

    def run(self, duration_s: float | None = None) -> IngestStats:
        """Tail the feed until :meth:`stop` (or for ``duration_s``), then
        drain whatever is already complete in the feed."""
        deadline = (
            time.monotonic() + duration_s if duration_s is not None else None
        )
        while not self._stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            if self.step() == 0:
                self._stop.wait(self.poll_interval_s)
        return self.drain()

    # -- background operation -----------------------------------------------------

    def start(self, duration_s: float | None = None) -> "TailIngester":
        """Run the tail loop on a background thread (idempotent stop)."""
        if self._thread is not None:
            raise RuntimeError("ingester already started")
        self._thread = threading.Thread(
            target=self.run, args=(duration_s,), name="repro-ingest", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> IngestStats:
        """Signal the loop to finish its current batch and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        return self.stats()

    def close(self) -> None:
        """Stop the loop and unregister the metrics collector."""
        self.stop()
        if self._obs_handle is not None:
            REGISTRY.unregister(self._obs_handle)
            self._obs_handle = None

    def __enter__(self) -> "TailIngester":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
