"""End-to-end freshness accounting: event appended -> visible in ``detect()``.

The ingester observes, for every applied event that carries an append
stamp, the latency between the producer writing it to the feed and the
moment the index batch holding it became queryable (``update()`` returned,
or the service acknowledged the ingest RPC).  Observations land in a
fixed-bucket cumulative histogram (Prometheus-style ``le`` buckets, one
counter per bucket so the exposition stays in the catalogued
counter/gauge vocabulary) plus a bounded ring of recent raw samples from
which the p50/p95/p99 gauges are computed.

The bucket bounds are chosen for the freshness SLO documented in
docs/INGEST.md: "p99 of appended events visible within 1 s under nominal
load" reads directly off the ``le_1s`` bucket (or the p99 gauge).
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["FreshnessTracker", "BUCKET_BOUNDS"]

#: cumulative histogram bounds in seconds and their exposition suffixes
BUCKET_BOUNDS: tuple[tuple[float, str], ...] = (
    (0.010, "le_10ms"),
    (0.050, "le_50ms"),
    (0.100, "le_100ms"),
    (0.500, "le_500ms"),
    (1.000, "le_1s"),
    (5.000, "le_5s"),
)

_QUANTILES = ((0.50, "p50"), (0.95, "p95"), (0.99, "p99"))


class FreshnessTracker:
    """Thread-safe freshness histogram + recent-sample quantiles."""

    def __init__(self, window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._buckets = [0] * len(BUCKET_BOUNDS)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._recent: deque[float] = deque(maxlen=window)

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        with self._lock:
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds
            self._recent.append(seconds)
            for i, (bound, _suffix) in enumerate(BUCKET_BOUNDS):
                if seconds <= bound:
                    self._buckets[i] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Quantile over the recent-sample window (0.0 with no samples)."""
        with self._lock:
            if not self._recent:
                return 0.0
            ordered = sorted(self._recent)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def samples(self) -> dict[str, float]:
        """Metric samples under the ``repro_ingest_freshness_*`` names."""
        with self._lock:
            buckets = list(self._buckets)
            count = self._count
            maximum = self._max
        out: dict[str, float] = {
            f"repro_ingest_freshness_{suffix}_total": buckets[i]
            for i, (_bound, suffix) in enumerate(BUCKET_BOUNDS)
        }
        out["repro_ingest_freshness_events_total"] = count
        out["repro_ingest_freshness_max_seconds"] = maximum
        for q, name in _QUANTILES:
            out[f"repro_ingest_freshness_{name}_seconds"] = self.quantile(q)
        return out

    def describe(self) -> str:
        """Human-readable histogram for the CLI's end-of-run report."""
        with self._lock:
            buckets = list(self._buckets)
            count = self._count
            total = self._sum
            maximum = self._max
        if count == 0:
            return "freshness: no stamped events observed"
        lines = [
            f"freshness over {count} events: mean={total / count:.4f}s "
            f"p50={self.quantile(0.5):.4f}s p95={self.quantile(0.95):.4f}s "
            f"p99={self.quantile(0.99):.4f}s max={maximum:.4f}s"
        ]
        for i, (bound, _suffix) in enumerate(BUCKET_BOUNDS):
            lines.append(f"  <= {bound:g}s: {buckets[i]}")
        lines.append(f"  +Inf: {count}")
        return "\n".join(lines)
