"""Durable ingest checkpoints: how far into the feed the index has consumed.

A checkpoint is one small JSON document, written atomically (temp file,
fsync, ``os.replace``) *after* the micro-batch it describes has been
applied to the index.  Crash ordering therefore only ever loses the
checkpoint, never runs ahead of the index: on restart the ingester re-reads
from the last persisted offset and the replay filter
(:func:`repro.ingest.ingester.drop_indexed`) discards the events the index
already holds.  See docs/INGEST.md for the full recovery argument.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

__all__ = ["Checkpoint", "load_checkpoint", "store_checkpoint"]

_VERSION = 1


@dataclass(frozen=True)
class Checkpoint:
    """Ingest progress: feed offset plus cumulative apply counters."""

    offset: int = 0
    batches: int = 0
    events: int = 0


def load_checkpoint(path: str) -> Checkpoint:
    """Load a checkpoint; a missing file means "start of the feed"."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except FileNotFoundError:
        return Checkpoint()
    if record.get("version") != _VERSION:
        raise ValueError(f"unsupported ingest checkpoint: {record!r}")
    return Checkpoint(
        offset=int(record["offset"]),
        batches=int(record.get("batches", 0)),
        events=int(record.get("events", 0)),
    )


def store_checkpoint(path: str, checkpoint: Checkpoint) -> None:
    """Persist ``checkpoint`` atomically (readers see old or new, never torn)."""
    record = {
        "version": _VERSION,
        "offset": checkpoint.offset,
        "batches": checkpoint.batches,
        "events": checkpoint.events,
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
