"""In-memory write buffer of the LSM store.

Each key holds a *base state* plus a queue of pending merge deltas:

* base ``PUT`` / ``DELETE``: the newest full write seen in this memtable --
  any older on-disk history is irrelevant for this key;
* base ``ABSENT``: only merge deltas have arrived, so a read (or flush) must
  still consult older SSTables for the base value.

Values are kept *encoded* (the same bytes written to the WAL) so the
memtable's accounting of its own size is exact and flushing is a straight
copy.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.kvstore.encoding import decode_value
from repro.kvstore.merge import MergeOperator
from repro.kvstore.wal import KIND_DELETE, KIND_MERGE, KIND_PUT

BASE_ABSENT = 0
BASE_PUT = 1
BASE_DELETE = 2


class MemEntry:
    """Per-key state: a base write plus pending merge deltas (oldest first)."""

    __slots__ = ("base_kind", "base_value", "deltas")

    def __init__(self) -> None:
        self.base_kind = BASE_ABSENT
        self.base_value: bytes | None = None
        self.deltas: list[bytes] = []

    def apply(self, kind: int, value: bytes) -> int:
        """Fold one WAL-kind operation in; return the net byte delta."""
        if kind == KIND_MERGE:
            self.deltas.append(value)
            return len(value)
        freed = (len(self.base_value) if self.base_value is not None else 0) + sum(
            len(d) for d in self.deltas
        )
        self.deltas.clear()
        if kind == KIND_PUT:
            self.base_kind = BASE_PUT
            self.base_value = value
            return len(value) - freed
        if kind == KIND_DELETE:
            self.base_kind = BASE_DELETE
            self.base_value = None
            return -freed
        raise ValueError(f"unknown op kind {kind}")

    def is_self_contained(self) -> bool:
        """True when a read never needs older SSTables for this key."""
        return self.base_kind != BASE_ABSENT


class Memtable:
    """Unsorted hash of :class:`MemEntry`; sorted only when flushed.

    A memtable can be *sealed* when it is handed off to a flush: a sealed
    memtable rejects further writes, making it safe to read from other
    threads (and to stream into an SSTable) without holding the store's
    write lock.
    """

    def __init__(self) -> None:
        self._entries: dict[bytes, MemEntry] = {}
        self._approx_bytes = 0
        self._sealed = False

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def approximate_bytes(self) -> int:
        """Rough payload footprint used to trigger flushes."""
        return self._approx_bytes

    @property
    def sealed(self) -> bool:
        return self._sealed

    def seal(self) -> None:
        """Freeze the memtable for immutable handoff to a flush."""
        self._sealed = True

    def apply(self, kind: int, key: bytes, value: bytes) -> None:
        """Apply one operation (same kinds as the WAL)."""
        if self._sealed:
            raise ValueError("cannot write to a sealed memtable")
        entry = self._entries.get(key)
        if entry is None:
            entry = MemEntry()
            self._entries[key] = entry
            self._approx_bytes += len(key)
        self._approx_bytes += entry.apply(kind, value)

    def lookup(self, key: bytes) -> MemEntry | None:
        """Return the entry for ``key`` (or ``None`` if never touched here)."""
        return self._entries.get(key)

    def resolve(
        self, key: bytes, operator: MergeOperator | None
    ) -> tuple[bool, Any]:
        """Resolve a key fully *within* the memtable.

        Returns ``(resolved, value)``; ``resolved`` is False when older
        SSTables must still be consulted.  A resolved deleted key yields
        ``(True, None)`` via ``value is TOMBSTONE`` -- callers use
        :data:`TOMBSTONE` to distinguish deletion from a stored ``None``.
        """
        entry = self._entries.get(key)
        if entry is None:
            return False, None
        if not entry.is_self_contained():
            return False, None
        if entry.base_kind == BASE_DELETE and not entry.deltas:
            return True, TOMBSTONE
        base = (
            decode_value(entry.base_value)
            if entry.base_kind == BASE_PUT and entry.base_value is not None
            else None
        )
        if not entry.deltas:
            return True, base
        if operator is None:
            raise ValueError("merge deltas present but table has no merge operator")
        deltas = [decode_value(d) for d in entry.deltas]
        return True, operator.full_merge(base, deltas)

    def iter_sorted(self) -> Iterator[tuple[bytes, MemEntry]]:
        """Yield entries in key order (used by flush and scans)."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    def clear(self) -> None:
        self._entries.clear()
        self._approx_bytes = 0


class _Tombstone:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<TOMBSTONE>"


#: sentinel returned by resolution paths for "definitely deleted"
TOMBSTONE = _Tombstone()
