"""Binary codecs for keys and values.

Keys are tuples of primitives encoded into bytes whose *lexicographic order
matches the natural tuple order*.  This is what lets SSTables stay sorted and
range scans work without decoding every key.  The scheme follows the classic
"tuple layer" design:

* every element is prefixed with a one-byte type tag chosen so that
  ``None < False < True < ints < floats-interleaved < str < bytes``;
* integers are encoded sign-magnitude with a length byte folded into the tag
  neighbourhood, so shorter positive numbers sort before longer ones and
  negatives (stored as complements) sort reversed, as they must;
* strings/bytes are ``0x00``-escaped and ``0x00 0x00`` terminated so that a
  shorter string sorts before any of its extensions;
* floats use the IEEE-754 sign-flip trick (flip all bits for negatives, flip
  the sign bit for positives) which makes the big-endian bytes order-preserve.

Values use a compact self-describing format (a small msgpack work-alike)
supporting ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
``list``, ``tuple`` and ``dict``.  Tuples decode as tuples, lists as lists.
"""

from __future__ import annotations

import struct
from typing import Any, Iterable

KeyPart = None | bool | int | float | str | bytes
Key = tuple[KeyPart, ...]

# --- key encoding ----------------------------------------------------------

_TAG_NONE = 0x01
_TAG_FALSE = 0x02
_TAG_TRUE = 0x03
# Integers: tag encodes sign and byte length so the tag itself orders values.
# Negative ints: tags 0x10..0x17 for lengths 8..1 (longer negative = smaller).
# Zero: 0x18.  Positive ints: tags 0x19..0x20 for lengths 1..8.
_TAG_INT_ZERO = 0x18
_TAG_FLOAT = 0x28
_TAG_STR = 0x30
_TAG_BYTES = 0x38

_MAX_INT_BYTES = 8


class KeyEncodingError(ValueError):
    """Raised when a key or encoded key buffer is malformed."""


def _encode_escaped(out: bytearray, data: bytes) -> None:
    out.extend(data.replace(b"\x00", b"\x00\xff"))
    out.extend(b"\x00\x00")


def _decode_escaped(buf: bytes, pos: int) -> tuple[bytes, int]:
    chunks = bytearray()
    n = len(buf)
    while pos < n:
        b = buf[pos]
        if b != 0x00:
            chunks.append(b)
            pos += 1
            continue
        if pos + 1 >= n:
            raise KeyEncodingError("truncated escaped sequence")
        nxt = buf[pos + 1]
        if nxt == 0x00:
            return bytes(chunks), pos + 2
        if nxt == 0xFF:
            chunks.append(0x00)
            pos += 2
            continue
        raise KeyEncodingError(f"invalid escape byte {nxt:#x}")
    raise KeyEncodingError("unterminated escaped sequence")


def _encode_int(out: bytearray, value: int) -> None:
    if value == 0:
        out.append(_TAG_INT_ZERO)
        return
    magnitude = value if value > 0 else -value
    length = (magnitude.bit_length() + 7) // 8
    if length > _MAX_INT_BYTES:
        raise KeyEncodingError(f"integer key element out of range: {value}")
    if value > 0:
        out.append(_TAG_INT_ZERO + length)
        out.extend(magnitude.to_bytes(length, "big"))
    else:
        out.append(_TAG_INT_ZERO - length)
        # Complement so that, at equal length, more-negative sorts first.
        complement = (1 << (8 * length)) - 1 - magnitude
        out.extend(complement.to_bytes(length, "big"))


def _encode_float(out: bytearray, value: float) -> None:
    if value == 0.0:
        value = 0.0  # canonicalize -0.0: equal floats must encode identically
    raw = struct.unpack(">Q", struct.pack(">d", value))[0]
    if raw & (1 << 63):
        raw ^= (1 << 64) - 1  # negative: flip everything
    else:
        raw ^= 1 << 63  # positive: flip the sign bit
    out.append(_TAG_FLOAT)
    out.extend(raw.to_bytes(8, "big"))


def encode_key(parts: Iterable[KeyPart]) -> bytes:
    """Encode a tuple of primitives into an order-preserving byte string."""
    out = bytearray()
    for part in parts:
        if part is None:
            out.append(_TAG_NONE)
        elif part is True:
            out.append(_TAG_TRUE)
        elif part is False:
            out.append(_TAG_FALSE)
        elif isinstance(part, int):
            _encode_int(out, part)
        elif isinstance(part, float):
            _encode_float(out, part)
        elif isinstance(part, str):
            out.append(_TAG_STR)
            _encode_escaped(out, part.encode("utf-8"))
        elif isinstance(part, bytes):
            out.append(_TAG_BYTES)
            _encode_escaped(out, part)
        else:
            raise KeyEncodingError(f"unsupported key element type: {type(part)!r}")
    return bytes(out)


def decode_key(buf: bytes) -> Key:
    """Decode a byte string produced by :func:`encode_key`."""
    parts: list[KeyPart] = []
    pos = 0
    n = len(buf)
    while pos < n:
        tag = buf[pos]
        pos += 1
        if tag == _TAG_NONE:
            parts.append(None)
        elif tag == _TAG_FALSE:
            parts.append(False)
        elif tag == _TAG_TRUE:
            parts.append(True)
        elif tag == _TAG_INT_ZERO:
            parts.append(0)
        elif _TAG_INT_ZERO - _MAX_INT_BYTES <= tag < _TAG_INT_ZERO:
            length = _TAG_INT_ZERO - tag
            if pos + length > n:
                raise KeyEncodingError("truncated negative integer")
            complement = int.from_bytes(buf[pos : pos + length], "big")
            magnitude = (1 << (8 * length)) - 1 - complement
            parts.append(-magnitude)
            pos += length
        elif _TAG_INT_ZERO < tag <= _TAG_INT_ZERO + _MAX_INT_BYTES:
            length = tag - _TAG_INT_ZERO
            if pos + length > n:
                raise KeyEncodingError("truncated positive integer")
            parts.append(int.from_bytes(buf[pos : pos + length], "big"))
            pos += length
        elif tag == _TAG_FLOAT:
            if pos + 8 > n:
                raise KeyEncodingError("truncated float")
            raw = int.from_bytes(buf[pos : pos + 8], "big")
            if raw & (1 << 63):
                raw ^= 1 << 63
            else:
                raw ^= (1 << 64) - 1
            parts.append(struct.unpack(">d", raw.to_bytes(8, "big"))[0])
            pos += 8
        elif tag == _TAG_STR:
            data, pos = _decode_escaped(buf, pos)
            parts.append(data.decode("utf-8"))
        elif tag == _TAG_BYTES:
            data, pos = _decode_escaped(buf, pos)
            parts.append(data)
        else:
            raise KeyEncodingError(f"unknown key tag {tag:#x} at offset {pos - 1}")
    return tuple(parts)


# --- value encoding --------------------------------------------------------

_V_NONE = 0xC0
_V_FALSE = 0xC2
_V_TRUE = 0xC3
_V_INT = 0xD0  # struct >q
_V_BIGINT = 0xD1  # length-prefixed signed big int
_V_FLOAT = 0xCB  # struct >d
_V_STR = 0xD9  # u32 length + utf-8
_V_BYTES = 0xC4  # u32 length + raw
_V_LIST = 0xDD  # u32 count + items
_V_TUPLE = 0xDE  # u32 count + items
_V_DICT = 0xDF  # u32 count + alternating key/value items
_V_SMALL_INT_BASE = 0x00  # 0x00..0x7f encode 0..127 inline

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class ValueEncodingError(ValueError):
    """Raised when a value cannot be encoded or a buffer is malformed."""


def _encode_value_into(out: bytearray, obj: Any) -> None:
    if obj is None:
        out.append(_V_NONE)
    elif obj is True:
        out.append(_V_TRUE)
    elif obj is False:
        out.append(_V_FALSE)
    elif isinstance(obj, int):
        if 0 <= obj <= 127:
            out.append(_V_SMALL_INT_BASE + obj)
        elif _I64_MIN <= obj <= _I64_MAX:
            out.append(_V_INT)
            out.extend(_I64.pack(obj))
        else:
            raw = obj.to_bytes((obj.bit_length() + 8) // 8, "big", signed=True)
            out.append(_V_BIGINT)
            out.extend(_U32.pack(len(raw)))
            out.extend(raw)
    elif isinstance(obj, float):
        out.append(_V_FLOAT)
        out.extend(_F64.pack(obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(_V_STR)
        out.extend(_U32.pack(len(raw)))
        out.extend(raw)
    elif isinstance(obj, (bytes, bytearray)):
        out.append(_V_BYTES)
        out.extend(_U32.pack(len(obj)))
        out.extend(obj)
    elif isinstance(obj, list):
        out.append(_V_LIST)
        out.extend(_U32.pack(len(obj)))
        for item in obj:
            _encode_value_into(out, item)
    elif isinstance(obj, tuple):
        out.append(_V_TUPLE)
        out.extend(_U32.pack(len(obj)))
        for item in obj:
            _encode_value_into(out, item)
    elif isinstance(obj, dict):
        out.append(_V_DICT)
        out.extend(_U32.pack(len(obj)))
        for key, value in obj.items():
            _encode_value_into(out, key)
            _encode_value_into(out, value)
    else:
        raise ValueEncodingError(f"unsupported value type: {type(obj)!r}")


def encode_value(obj: Any) -> bytes:
    """Serialize a Python value into the store's binary format."""
    out = bytearray()
    _encode_value_into(out, obj)
    return bytes(out)


def _decode_value_from(buf: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(buf):
        raise ValueEncodingError("truncated value buffer")
    tag = buf[pos]
    pos += 1
    if tag <= 0x7F:
        return tag, pos
    if tag == _V_NONE:
        return None, pos
    if tag == _V_TRUE:
        return True, pos
    if tag == _V_FALSE:
        return False, pos
    if tag == _V_INT:
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == _V_BIGINT:
        (length,) = _U32.unpack_from(buf, pos)
        pos += 4
        raw = buf[pos : pos + length]
        return int.from_bytes(raw, "big", signed=True), pos + length
    if tag == _V_FLOAT:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _V_STR:
        (length,) = _U32.unpack_from(buf, pos)
        pos += 4
        return buf[pos : pos + length].decode("utf-8"), pos + length
    if tag == _V_BYTES:
        (length,) = _U32.unpack_from(buf, pos)
        pos += 4
        return bytes(buf[pos : pos + length]), pos + length
    if tag in (_V_LIST, _V_TUPLE):
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_value_from(buf, pos)
            items.append(item)
        return (tuple(items) if tag == _V_TUPLE else items), pos
    if tag == _V_DICT:
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        result: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_value_from(buf, pos)
            value, pos = _decode_value_from(buf, pos)
            result[key] = value
        return result, pos
    raise ValueEncodingError(f"unknown value tag {tag:#x}")


def decode_value(buf: bytes) -> Any:
    """Deserialize bytes produced by :func:`encode_value`."""
    obj, pos = _decode_value_from(buf, 0)
    if pos != len(buf):
        raise ValueEncodingError(f"{len(buf) - pos} trailing bytes after value")
    return obj
