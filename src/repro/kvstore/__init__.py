"""Embedded key-value store used as the indexing backend.

The paper stores its inverted index, trace sequences and statistics tables in
Apache Cassandra.  This package provides the stand-in: an embedded
log-structured merge-tree (LSM) store with a write-ahead log, memtable,
bloom-filtered SSTables, size-tiered compaction and -- crucially for the
paper's write pattern -- *merge operators* that implement Cassandra-style
"append to a collection column" writes without read-modify-write cycles.

Two interchangeable implementations are exposed:

* :class:`LSMStore` -- durable, file-backed, crash-recoverable.
* :class:`InMemoryStore` -- dictionary-backed, for tests and small jobs.

Both satisfy the :class:`KeyValueStore` interface, so every index structure
in :mod:`repro.core` runs unchanged on either.
"""

from repro.kvstore.api import KeyValueStore, StoreClosedError, UnknownTableError
from repro.kvstore.cache import BlockCache, LRUCache
from repro.kvstore.compaction import LeveledConfig
from repro.kvstore.locks import RWLock
from repro.kvstore.lsm import LSMStore, StoreMetrics
from repro.kvstore.memory import InMemoryStore
from repro.kvstore.merge import (
    CounterMapMerge,
    LastWriteWins,
    ListAppendMerge,
    MergeOperator,
    resolve_merge_operator,
)

__all__ = [
    "KeyValueStore",
    "LSMStore",
    "InMemoryStore",
    "StoreMetrics",
    "LeveledConfig",
    "LRUCache",
    "BlockCache",
    "RWLock",
    "MergeOperator",
    "ListAppendMerge",
    "CounterMapMerge",
    "LastWriteWins",
    "resolve_merge_operator",
    "StoreClosedError",
    "UnknownTableError",
]
