"""Dictionary-backed store: the reference implementation of the API.

Semantically equivalent to :class:`repro.kvstore.lsm.LSMStore` minus
durability; the property-based test suite checks the two against each other
under random operation sequences.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator

from repro.kvstore.api import (
    KeyValueStore,
    MergeUnsupportedError,
    StoreClosedError,
    UnknownTableError,
    normalize_key,
)
from repro.kvstore.encoding import Key, KeyPart, encode_key
from repro.kvstore.lsm import StoreMetrics
from repro.kvstore.merge import MergeOperator, resolve_merge_operator
from repro.obs.registry import REGISTRY, store_samples
from repro.obs.trace import current_tracer


class InMemoryStore(KeyValueStore):
    """In-process store holding all data in dictionaries.

    Values are structurally copied on the way in and out, so callers cannot
    alias the store's internal state -- matching the serialize/deserialize
    boundary of the durable backend.

    Accepts the same tuning knobs as :class:`~repro.kvstore.lsm.LSMStore`
    (all no-ops here) so code can swap backends without branching; a single
    re-entrant lock makes every operation atomic, which trivially satisfies
    the LSM store's concurrency contract.
    """

    _counter_lock = threading.Lock()
    _instances = 0

    def __init__(
        self,
        *,
        memtable_flush_bytes: int = 0,
        sync_wal: bool = False,
        compaction_min_tables: int = 0,
        auto_compact: bool = True,
        background_compaction: bool = False,
        block_cache_bytes: int = 0,
    ) -> None:
        del memtable_flush_bytes, sync_wal, compaction_min_tables
        del auto_compact, background_compaction, block_cache_bytes
        self._tables: dict[str, dict[Key, Any]] = {}
        self._merge_ops: dict[str, MergeOperator | None] = {}
        self._lock = threading.RLock()
        self._closed = False
        self.metrics = StoreMetrics()
        with InMemoryStore._counter_lock:
            InMemoryStore._instances += 1
            #: identity used in metrics exposition labels
            self.obs_name = f"memory-{InMemoryStore._instances}"
        self._obs_handle = REGISTRY.register(
            {"store": self.obs_name, "backend": "memory"}, self._collect_obs_metrics
        )

    # -- table management -----------------------------------------------------

    def create_table(self, name: str, merge_operator: str | None = None) -> None:
        self._check_open()
        with self._lock:
            if name in self._tables:
                existing = self._merge_ops[name]
                existing_name = existing.name if existing is not None else None
                if existing_name != merge_operator:
                    raise ValueError(
                        f"table {name!r} already exists with merge operator "
                        f"{existing_name!r}, not {merge_operator!r}"
                    )
                return
            self._tables[name] = {}
            self._merge_ops[name] = (
                resolve_merge_operator(merge_operator) if merge_operator else None
            )

    def has_table(self, name: str) -> bool:
        self._check_open()
        return name in self._tables

    def list_tables(self) -> list[str]:
        self._check_open()
        with self._lock:
            return sorted(self._tables)

    # -- reads/writes ----------------------------------------------------------

    def put(self, table: str, key: KeyPart | Key, value: Any) -> None:
        data = self._table(table)
        self.metrics.bump("puts")
        with self._lock:
            data[normalize_key(key)] = _copy_value(value)

    def merge(self, table: str, key: KeyPart | Key, delta: Any) -> None:
        data = self._table(table)
        operator = self._merge_ops[table]
        if operator is None:
            raise MergeUnsupportedError(f"table {table!r} has no merge operator")
        self.metrics.bump("merges")
        with self._lock:
            norm = normalize_key(key)
            base = data.get(norm)
            delta_copy = _copy_value(delta)
            if base is None:
                data[norm] = operator.full_merge(None, [delta_copy])
            elif not operator.merge_in_place(base, delta_copy):
                data[norm] = operator.full_merge(base, [delta_copy])

    def get(self, table: str, key: KeyPart | Key, default: Any = None) -> Any:
        data = self._table(table)
        self.metrics.bump("gets")
        with self._lock:
            value = data.get(normalize_key(key), _MISSING)
        if value is _MISSING:
            return default
        return _copy_value(value)

    def multi_get(
        self,
        table: str,
        keys: Iterable[KeyPart | Key],
        default: Any = None,
    ) -> list[Any]:
        data = self._table(table)
        key_list = list(keys)
        self.metrics.bump("multi_get_batches")
        self.metrics.bump("gets", len(key_list))
        span = current_tracer().span("memory.multi_get")
        with span, self._lock:
            raw = [data.get(normalize_key(key), _MISSING) for key in key_list]
            if span.enabled:
                span.add("keys", len(key_list))
                span.add("hits", sum(1 for value in raw if value is not _MISSING))
        return [default if value is _MISSING else _copy_value(value) for value in raw]

    def delete(self, table: str, key: KeyPart | Key) -> None:
        data = self._table(table)
        self.metrics.bump("deletes")
        with self._lock:
            data.pop(normalize_key(key), None)

    def scan(
        self, table: str, prefix: KeyPart | Key | None = None
    ) -> Iterator[tuple[Key, Any]]:
        data = self._table(table)
        self.metrics.bump("scans")
        with self._lock:
            items = sorted(data.items(), key=lambda kv: encode_key(kv[0]))
        if prefix is not None:
            wanted = encode_key(normalize_key(prefix))
            items = [
                (key, value)
                for key, value in items
                if encode_key(key).startswith(wanted)
            ]
        for key, value in items:
            yield key, _copy_value(value)

    def scan_range(
        self,
        table: str,
        start: KeyPart | Key | None = None,
        stop: KeyPart | Key | None = None,
    ) -> Iterator[tuple[Key, Any]]:
        data = self._table(table)
        self.metrics.bump("scans")
        low = encode_key(normalize_key(start)) if start is not None else None
        high = encode_key(normalize_key(stop)) if stop is not None else None
        with self._lock:
            items = sorted(data.items(), key=lambda kv: encode_key(kv[0]))
        for key, value in items:
            encoded = encode_key(key)
            if low is not None and encoded < low:
                continue
            if high is not None and encoded >= high:
                break
            yield key, _copy_value(value)

    # -- lifecycle --------------------------------------------------------------

    def flush(self) -> None:
        self._check_open()

    def close(self) -> None:
        REGISTRY.unregister(self._obs_handle)
        self._closed = True

    def _collect_obs_metrics(self) -> dict[str, float]:
        """Metrics-registry collector: one consistent store sample."""
        if self._closed:
            return {}
        with self._lock:
            tables = len(self._tables)
        return store_samples(self.metrics.snapshot(), tables=tables)

    # -- internals ---------------------------------------------------------------

    def _table(self, name: str) -> dict[Key, Any]:
        self._check_open()
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"table {name!r} does not exist") from None

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")


_MISSING = object()


def _copy_value(value: Any) -> Any:
    """Structural copy of plain-data values (much faster than deepcopy).

    The store's value domain is compositions of primitives with
    list/tuple/dict; only the mutable containers need copying.  A hashable
    value is deeply immutable for that domain (tuples of tuples of scalars)
    and can be shared instead of copied -- the hot path, since index
    entries are tuples.
    """
    if isinstance(value, list):
        return [_copy_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _copy_value(val) for key, val in value.items()}
    if isinstance(value, tuple):
        try:
            hash(value)
        except TypeError:
            return tuple(_copy_value(item) for item in value)
        return value
    return value
