"""Reader/writer lock used by the concurrent LSM store.

Semantics:

* any number of readers may hold the lock concurrently;
* a writer is exclusive against both readers and other writers;
* the lock is *write-preferring*: once a writer is waiting, new readers
  queue behind it, so a steady stream of gets cannot starve the write path;
* write acquisition is reentrant (a thread holding the write lock may
  re-acquire it, and may also take the read side, which is then a no-op);
* read acquisition is reentrant per thread, so a reader never deadlocks
  against a waiting writer on a nested read.

The store holds the write side only for short, in-memory critical sections
(memtable mutation, SSTable-set swaps, manifest bookkeeping); all disk I/O
of flushes and compactions happens outside the lock, which is what keeps
gets and scans from ever blocking behind them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Write-preferring reader/writer lock with reentrant acquisition."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None
        self._write_depth = 0
        self._waiting_writers = 0
        self._local = threading.local()

    # -- read side ---------------------------------------------------------

    def acquire_read(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if self._writer == ident:
                # A writer already has exclusive access; nested reads are free.
                self._write_depth += 1
                return
            held = getattr(self._local, "read_depth", 0)
            if held == 0:
                # New readers queue behind waiting writers (write preference);
                # nested reads skip the gate to avoid self-deadlock.
                while self._writer is not None or self._waiting_writers:
                    self._cond.wait()
            self._readers += 1
            self._local.read_depth = held + 1

    def release_read(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if self._writer == ident:
                self._write_depth -= 1
                return
            self._local.read_depth -= 1
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side --------------------------------------------------------

    def acquire_write(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if self._writer == ident:
                self._write_depth += 1
                return
            if getattr(self._local, "read_depth", 0):
                raise RuntimeError("cannot upgrade a read lock to a write lock")
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._writer = ident
                self._write_depth = 1
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        with self._cond:
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ---------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
