"""Merge operators: Cassandra-style blind writes for mutable values.

The paper's index tables are all "append a few entries to a possibly huge
collection" workloads.  Reading the old collection, extending it in Python
and writing it back would make every index batch O(index size).  Merge
operators (the RocksDB design) solve this: a *merge delta* is written blindly
and the store combines base value and deltas lazily -- at read time and
during compaction.

Operators must be associative over deltas so that partial merges performed by
compaction commute with the final full merge.
"""

from __future__ import annotations

from typing import Any


class MergeOperator:
    """Combines a base value with an ordered list of merge deltas."""

    #: registry name used in the store manifest
    name = "abstract"

    def full_merge(self, base: Any, deltas: list[Any]) -> Any:
        """Combine ``base`` (or ``None``) with ``deltas``, oldest first."""
        raise NotImplementedError

    def partial_merge(self, deltas: list[Any]) -> Any:
        """Collapse consecutive deltas (oldest first) into a single delta."""
        raise NotImplementedError

    def merge_in_place(self, base: Any, delta: Any) -> bool:
        """Mutate ``base`` by one delta; return False if unsupported.

        In-memory backends use this to avoid rebuilding large collection
        values on every blind write (the LSM backend never needs it -- its
        deltas stay encoded until read or compaction).
        """
        return False


class ListAppendMerge(MergeOperator):
    """Value is a list; each delta is a list of elements to append.

    This models Cassandra's ``list`` collection append used for the paper's
    ``Index`` and ``Seq`` tables.
    """

    name = "list_append"

    def full_merge(self, base: Any, deltas: list[Any]) -> Any:
        result = list(base) if base is not None else []
        for delta in deltas:
            result.extend(delta)
        return result

    def partial_merge(self, deltas: list[Any]) -> Any:
        merged: list[Any] = []
        for delta in deltas:
            merged.extend(delta)
        return merged

    def merge_in_place(self, base: Any, delta: Any) -> bool:
        base.extend(delta)
        return True


class CounterMapMerge(MergeOperator):
    """Value is ``{key: [sum, count, ...numeric]}``; deltas add element-wise.

    Used for the paper's ``Count`` and ``Reverse Count`` tables, whose values
    accumulate total durations and completion counts per follower event.
    """

    name = "counter_map"

    def full_merge(self, base: Any, deltas: list[Any]) -> Any:
        result: dict[Any, list[float]] = (
            {key: list(vals) for key, vals in base.items()} if base is not None else {}
        )
        for delta in deltas:
            self._accumulate(result, delta)
        return result

    def partial_merge(self, deltas: list[Any]) -> Any:
        merged: dict[Any, list[float]] = {}
        for delta in deltas:
            self._accumulate(merged, delta)
        return merged

    def merge_in_place(self, base: Any, delta: Any) -> bool:
        self._accumulate(base, delta)
        return True

    @staticmethod
    def _accumulate(target: dict[Any, list[float]], delta: dict[Any, Any]) -> None:
        for key, vals in delta.items():
            slot = target.get(key)
            if slot is None:
                target[key] = list(vals)
            else:
                for i, val in enumerate(vals):
                    slot[i] += val


class MaxMapMerge(MergeOperator):
    """Value is ``{key: comparable}``; deltas keep the per-key maximum.

    Used for the ``LastChecked`` table: per trace, the latest completion
    timestamp of a pair wins.
    """

    name = "max_map"

    def full_merge(self, base: Any, deltas: list[Any]) -> Any:
        result: dict[Any, Any] = dict(base) if base is not None else {}
        for delta in deltas:
            for key, val in delta.items():
                if key not in result or val > result[key]:
                    result[key] = val
        return result

    def partial_merge(self, deltas: list[Any]) -> Any:
        merged: dict[Any, Any] = {}
        for delta in deltas:
            for key, val in delta.items():
                if key not in merged or val > merged[key]:
                    merged[key] = val
        return merged

    def merge_in_place(self, base: Any, delta: Any) -> bool:
        for key, val in delta.items():
            if key not in base or val > base[key]:
                base[key] = val
        return True


class LastWriteWins(MergeOperator):
    """Each delta replaces the value entirely (a put expressed as a merge)."""

    name = "last_write_wins"

    def full_merge(self, base: Any, deltas: list[Any]) -> Any:
        return deltas[-1] if deltas else base

    def partial_merge(self, deltas: list[Any]) -> Any:
        return deltas[-1]


_REGISTRY: dict[str, MergeOperator] = {
    op.name: op
    for op in (ListAppendMerge(), CounterMapMerge(), MaxMapMerge(), LastWriteWins())
}


def resolve_merge_operator(name: str) -> MergeOperator:
    """Look up a merge operator by its manifest name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown merge operator: {name!r}") from None


def register_merge_operator(operator: MergeOperator) -> None:
    """Register a custom operator so persisted manifests can resolve it."""
    _REGISTRY[operator.name] = operator
