"""Serializable bloom filter used by SSTable readers to skip files.

Hashing is derived from ``blake2b`` digests (stable across processes and
Python versions, unlike the built-in ``hash``), split into two 64-bit words
combined with the Kirsch-Mitzenmacher double-hashing scheme.
"""

from __future__ import annotations

import hashlib
import math
import struct

_HEADER = struct.Struct(">IIQ")  # num_hashes, reserved, num_bits


def _hash_pair(data: bytes) -> tuple[int, int]:
    digest = hashlib.blake2b(data, digest_size=16).digest()
    h1, h2 = struct.unpack(">QQ", digest)
    return h1, h2 | 1  # force h2 odd so strides cover the bit array


class BloomFilter:
    """Fixed-size bloom filter over byte-string members."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0 or num_hashes <= 0:
            raise ValueError("num_bits and num_hashes must be positive")
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)

    @classmethod
    def with_capacity(cls, expected_items: int, false_positive_rate: float = 0.01) -> "BloomFilter":
        """Size a filter for ``expected_items`` at the target error rate."""
        expected_items = max(1, expected_items)
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in (0, 1)")
        ln2 = math.log(2.0)
        num_bits = max(8, int(-expected_items * math.log(false_positive_rate) / (ln2 * ln2)))
        num_hashes = max(1, round((num_bits / expected_items) * ln2))
        return cls(num_bits, num_hashes)

    def add(self, item: bytes) -> None:
        """Insert ``item``."""
        h1, h2 = _hash_pair(item)
        for i in range(self._num_hashes):
            bit = (h1 + i * h2) % self._num_bits
            self._bits[bit >> 3] |= 1 << (bit & 7)

    def __contains__(self, item: bytes) -> bool:
        h1, h2 = _hash_pair(item)
        for i in range(self._num_hashes):
            bit = (h1 + i * h2) % self._num_bits
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    def to_bytes(self) -> bytes:
        """Serialize for embedding in an SSTable footer."""
        return _HEADER.pack(self._num_hashes, 0, self._num_bits) + bytes(self._bits)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "BloomFilter":
        """Inverse of :meth:`to_bytes`."""
        num_hashes, _, num_bits = _HEADER.unpack_from(raw, 0)
        filt = cls(num_bits, num_hashes)
        payload = raw[_HEADER.size :]
        if len(payload) != len(filt._bits):
            raise ValueError("bloom filter payload length mismatch")
        filt._bits[:] = payload
        return filt

    @classmethod
    def from_buffer(cls, raw) -> "BloomFilter":
        """Zero-copy view over a serialized filter (e.g. an mmap'd SSTable
        bloom section).

        Membership tests index straight into the backing buffer, so the
        filter's bits live in the page cache rather than the heap; the
        returned filter is read-only (``add`` on an immutable buffer
        raises ``TypeError``).
        """
        view = memoryview(raw)
        num_hashes, _, num_bits = _HEADER.unpack_from(view, 0)
        if num_bits <= 0 or num_hashes <= 0:
            raise ValueError("num_bits and num_hashes must be positive")
        payload = view[_HEADER.size :]
        if len(payload) != (num_bits + 7) // 8:
            raise ValueError("bloom filter payload length mismatch")
        filt = cls.__new__(cls)
        filt._num_bits = num_bits
        filt._num_hashes = num_hashes
        filt._bits = payload
        return filt
