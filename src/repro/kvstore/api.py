"""Public interface of the key-value store backends.

Tables are cheap namespaces (like Cassandra column families).  Each table is
created with an optional :class:`~repro.kvstore.merge.MergeOperator`; only
tables with an operator accept :meth:`KeyValueStore.merge` writes.

Keys are tuples of primitives (``str``/``int``/``float``/``bytes``/``bool``/
``None``); a bare primitive is treated as a 1-tuple.  Values are arbitrary
compositions of the same primitives with ``list``/``tuple``/``dict``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.kvstore.encoding import Key, KeyPart


class StoreError(Exception):
    """Base class for store failures."""


class StoreClosedError(StoreError):
    """An operation was attempted on a closed store."""


class UnknownTableError(StoreError):
    """A table was used before being created."""


class MergeUnsupportedError(StoreError):
    """``merge`` was called on a table created without a merge operator."""


class CorruptionError(StoreError):
    """A persisted file failed a checksum or structural validation."""


class CorruptSSTableError(CorruptionError):
    """An SSTable failed structural validation (torn, truncated or flipped).

    Raised instead of raw ``struct.error``/``IndexError`` for every way a
    corrupt SSTable can fail to parse: bad CRCs, a truncated bloom filter,
    sparse-index entries pointing past EOF, torn record headers.  Subclass
    of :class:`CorruptionError`, so callers that only care about "the file
    is damaged" keep working.
    """


def normalize_key(key: KeyPart | Key) -> Key:
    """Coerce a user key into its canonical tuple form."""
    if isinstance(key, tuple):
        return key
    return (key,)


class KeyValueStore:
    """Abstract store API shared by :class:`LSMStore` and :class:`InMemoryStore`."""

    def create_table(self, name: str, merge_operator: str | None = None) -> None:
        """Create table ``name`` if absent.

        ``merge_operator`` is the registry name of the operator (see
        :func:`repro.kvstore.merge.resolve_merge_operator`).  Re-creating an
        existing table with the same operator is a no-op; with a different
        operator it raises ``ValueError``.
        """
        raise NotImplementedError

    def has_table(self, name: str) -> bool:
        """Return whether table ``name`` exists."""
        raise NotImplementedError

    def put(self, table: str, key: KeyPart | Key, value: Any) -> None:
        """Set ``key`` to ``value``, replacing any previous value."""
        raise NotImplementedError

    def merge(self, table: str, key: KeyPart | Key, delta: Any) -> None:
        """Apply a blind merge delta to ``key`` (requires a merge operator)."""
        raise NotImplementedError

    def get(self, table: str, key: KeyPart | Key, default: Any = None) -> Any:
        """Return the merged value for ``key`` or ``default`` if absent."""
        raise NotImplementedError

    def multi_get(
        self,
        table: str,
        keys: Iterable[KeyPart | Key],
        default: Any = None,
    ) -> list[Any]:
        """Batched point reads: one value per key, in input order.

        Semantically identical to ``[self.get(table, k, default) for k in
        keys]`` -- merge operators, tombstones and defaults included -- but
        executed as one atomic batch: backends resolve every key against a
        single consistent snapshot of their state and may share per-batch
        work (lock acquisition, bloom probes, block reads).  Duplicate keys
        are allowed and each position gets its answer.
        """
        return [self.get(table, key, default) for key in keys]

    def delete(self, table: str, key: KeyPart | Key) -> None:
        """Remove ``key`` (idempotent)."""
        raise NotImplementedError

    def scan(
        self,
        table: str,
        prefix: KeyPart | Key | None = None,
    ) -> Iterator[tuple[Key, Any]]:
        """Yield ``(key, value)`` sorted by key, optionally key-prefix filtered."""
        raise NotImplementedError

    def scan_range(
        self,
        table: str,
        start: KeyPart | Key | None = None,
        stop: KeyPart | Key | None = None,
    ) -> Iterator[tuple[Key, Any]]:
        """Yield ``(key, value)`` with ``start <= key < stop``, sorted.

        ``None`` bounds are open; ordering follows the key codec's tuple
        order (ints numerically, strings lexicographically, and so on).
        """
        raise NotImplementedError

    def flush(self) -> None:
        """Persist buffered writes (no-op for in-memory backends)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further operations raise :class:`StoreClosedError`."""
        raise NotImplementedError

    # -- maintenance hooks ----------------------------------------------------
    #
    # Backends without background structure (e.g. the dict-backed store)
    # inherit these defaults, keeping the two implementations API-identical
    # so callers can tune compaction/caching without branching on type.

    def compact(self) -> bool:
        """Run one compaction round; return whether anything was compacted."""
        return False

    def compact_all(self) -> None:
        """Force-merge all on-disk structure (no-op without one)."""

    def verify(self) -> None:
        """Scrub persisted data against checksums; raises on corruption."""

    @property
    def sstable_count(self) -> int:
        """Number of on-disk sorted tables (0 for in-memory backends)."""
        return 0

    def cache_stats(self) -> dict[str, int]:
        """Block-cache counters, empty when the backend has no cache."""
        return {}

    # -- conveniences shared by both backends --------------------------------

    def __enter__(self) -> "KeyValueStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def keys(self, table: str, prefix: KeyPart | Key | None = None) -> Iterator[Key]:
        """Yield keys only (sorted), optionally prefix filtered."""
        for key, _ in self.scan(table, prefix):
            yield key

    def __contains__(self, table_key: tuple[str, KeyPart | Key]) -> bool:
        table, key = table_key
        sentinel = object()
        return self.get(table, key, sentinel) is not sentinel
