"""Size-tiered compaction for the LSM store.

Compaction picks a *contiguous* run of SSTables (contiguity in manifest
order is what keeps merge-delta history well-ordered) whose sizes are within
a band of each other, and k-way merges them into a single replacement table.
Tombstones and baseless merge deltas can only be finalised when the run
includes the oldest table -- otherwise an older file might still hold the
base value the deltas apply to.
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Callable, Iterator

from repro.kvstore.encoding import decode_value, encode_value
from repro.kvstore.merge import MergeOperator
from repro.kvstore.sstable import SSTableReader
from repro.kvstore.wal import KIND_DELETE, KIND_MERGE, KIND_PUT


class CompactionPlan:
    """A contiguous slice ``[start, stop)`` of the manifest's SSTable list."""

    __slots__ = ("start", "stop", "includes_oldest")

    def __init__(self, start: int, stop: int) -> None:
        self.start = start
        self.stop = stop
        self.includes_oldest = start == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactionPlan([{self.start}:{self.stop}])"


def plan_size_tiered(
    sizes: list[int], min_tables: int = 4, size_ratio: float = 2.0
) -> CompactionPlan | None:
    """Choose a compaction run over tables listed oldest -> newest.

    Returns the first (oldest) contiguous window of at least ``min_tables``
    tables whose sizes all lie within ``size_ratio`` of the window minimum,
    or ``None`` when nothing qualifies.
    """
    count = len(sizes)
    if count < min_tables:
        return None
    start = 0
    while start <= count - min_tables:
        window_min = sizes[start]
        window_max = sizes[start]
        stop = start
        while stop < count:
            candidate_min = min(window_min, sizes[stop])
            candidate_max = max(window_max, sizes[stop])
            if candidate_max > max(candidate_min, 1) * size_ratio:
                break
            window_min, window_max = candidate_min, candidate_max
            stop += 1
        if stop - start >= min_tables:
            return CompactionPlan(start, stop)
        start += 1
    return None


def _resolve_key(
    records_newest_first: list[tuple[int, bytes]],
    operator: MergeOperator | None,
    finalize: bool,
) -> tuple[int, bytes] | None:
    """Collapse one key's records; ``None`` means the key can be dropped."""
    pending: list[bytes] = []  # newest first
    for kind, value in records_newest_first:
        if kind == KIND_MERGE:
            pending.append(value)
            continue
        if kind == KIND_PUT:
            if not pending:
                return KIND_PUT, value
            deltas = [decode_value(d) for d in reversed(pending)]
            merged = _require(operator).full_merge(decode_value(value), deltas)
            return KIND_PUT, encode_value(merged)
        # KIND_DELETE: history below the tombstone is dead.
        if pending:
            deltas = [decode_value(d) for d in reversed(pending)]
            merged = _require(operator).full_merge(None, deltas)
            return KIND_PUT, encode_value(merged)
        return None if finalize else (KIND_DELETE, b"")
    # Only merge deltas were found in this run.
    deltas = [decode_value(d) for d in reversed(pending)]
    if finalize:
        merged = _require(operator).full_merge(None, deltas)
        return KIND_PUT, encode_value(merged)
    partial = _require(operator).partial_merge(deltas)
    return KIND_MERGE, encode_value(partial)


def _require(operator: MergeOperator | None) -> MergeOperator:
    if operator is None:
        raise ValueError("merge deltas present but no merge operator registered")
    return operator


def merge_records(
    readers_oldest_first: list[SSTableReader],
    operator_for_key: Callable[[bytes], MergeOperator | None],
    finalize: bool,
) -> Iterator[tuple[int, bytes, bytes]]:
    """K-way merge readers, yielding collapsed ``(kind, key, value)`` records.

    ``finalize`` indicates the run includes the oldest table, allowing
    tombstone dropping and baseless-delta finalisation.
    """
    # rank 0 = newest source, so tuples (key, rank) sort ties newest-first.
    sources = list(reversed(readers_oldest_first))
    heap: list[tuple[bytes, int, int, bytes, Iterator[tuple[bytes, int, bytes]]]] = []
    for rank, reader in enumerate(sources):
        iterator = iter(reader)
        first = next(iterator, None)
        if first is not None:
            key, kind, value = first
            heapq.heappush(heap, (key, rank, kind, value, iterator))
    while heap:
        key = heap[0][0]
        records: list[tuple[int, bytes]] = []
        while heap and heap[0][0] == key:
            _, rank, kind, value, iterator = heapq.heappop(heap)
            records.append((kind, value))
            nxt = next(iterator, None)
            if nxt is not None:
                nkey, nkind, nvalue = nxt
                heapq.heappush(heap, (nkey, rank, nkind, nvalue, iterator))
        resolved = _resolve_key(records, operator_for_key(key), finalize)
        if resolved is not None:
            kind, value = resolved
            yield kind, key, value


class BackgroundCompactor:
    """Daemon thread driving a store's compaction rounds off the write path.

    The store signals :meth:`trigger` after every flush; the worker then
    drains qualifying compaction runs (``store._compaction_round()`` until
    it reports no plan).  All coordination with foreground reads/writes
    happens inside the store's own locking: the worker merges tables with
    no lock held and swaps the SSTable set atomically under the store's
    write lock, so a crash (or :meth:`stop`) between output and swap leaves
    the pre-compaction tables authoritative.

    Unexpected exceptions are recorded on :attr:`last_error` and counted in
    the store's ``compaction_aborts`` metric instead of killing the thread.
    """

    def __init__(self, store: Any, idle_wait: float = 1.0) -> None:
        self._store = store
        self._idle_wait = idle_wait
        self._wake = threading.Event()
        self._stopped = threading.Event()
        self.last_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="lsm-compactor", daemon=True
        )
        self._thread.start()

    def trigger(self) -> None:
        """Wake the worker (called by the store after a flush)."""
        self._wake.set()

    def stop(self) -> None:
        """Ask the worker to exit and join it (idempotent)."""
        self._stopped.set()
        self._wake.set()
        if self._thread.is_alive():
            self._thread.join()

    def _run(self) -> None:
        from repro.faults.schedule import SimulatedCrash

        while not self._stopped.is_set():
            self._wake.wait(timeout=self._idle_wait)
            self._wake.clear()
            if self._stopped.is_set():
                return
            try:
                while self._store._compaction_round():
                    if self._stopped.is_set():
                        return
            except SimulatedCrash as exc:
                # An injected crash means "the process died here": record it
                # and stop compacting -- retrying would mask the crash.
                self.last_error = exc
                return
            except Exception as exc:  # noqa: BLE001 - worker must survive
                self.last_error = exc
                self._store.metrics.bump("compaction_aborts")
