"""Compaction strategies for the LSM store.

Two planners live behind the same seam (``LSMStore(compaction=...)``):

**Size-tiered** picks a *contiguous* run of SSTables (contiguity in
manifest order is what keeps merge-delta history well-ordered) whose sizes
are within a band of each other, and k-way merges them into a single
replacement table.  Tombstones and baseless merge deltas can only be
finalised when the run includes the oldest table -- otherwise an older
file might still hold the base value the deltas apply to.

**Leveled** organises tables into levels: L0 holds raw flush output
(tables may overlap; recency = manifest order), every deeper level is a
single sorted run of key-disjoint tables with a byte budget growing by
``fanout`` per level.  When L0 accumulates ``l0_compact_tables`` tables
they are merged with the overlapping slice of L1; when a deeper level
exceeds its budget one victim table is promoted into the overlapping
slice of the next level (cascading on overflow).  A promotion whose
victim overlaps nothing below it is a *trivial move* -- a manifest-only
level reassignment that rewrites zero bytes.  ``plan_leveled`` is a pure
function over table metadata so the planner is directly property-testable
(see ``tests/kvstore/test_leveled_planner.py``).

Recency ordering is shared by both strategies: the store keeps one flat
list, oldest shadow first, i.e. deepest level first and L0 last
(oldest -> newest within L0), so merge ties resolve newest-first exactly
as in the size-tiered path.
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Callable, Iterator

from repro.kvstore.encoding import decode_value, encode_value
from repro.kvstore.merge import MergeOperator
from repro.kvstore.sstable import SSTableReader
from repro.kvstore.wal import KIND_DELETE, KIND_MERGE, KIND_PUT


class CompactionPlan:
    """A contiguous slice ``[start, stop)`` of the manifest's SSTable list."""

    __slots__ = ("start", "stop", "includes_oldest")

    def __init__(self, start: int, stop: int) -> None:
        self.start = start
        self.stop = stop
        self.includes_oldest = start == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactionPlan([{self.start}:{self.stop}])"


def plan_size_tiered(
    sizes: list[int], min_tables: int = 4, size_ratio: float = 2.0
) -> CompactionPlan | None:
    """Choose a compaction run over tables listed oldest -> newest.

    Returns the first (oldest) contiguous window of at least ``min_tables``
    tables whose sizes all lie within ``size_ratio`` of the window minimum,
    or ``None`` when nothing qualifies.
    """
    count = len(sizes)
    if count < min_tables:
        return None
    start = 0
    while start <= count - min_tables:
        window_min = sizes[start]
        window_max = sizes[start]
        stop = start
        while stop < count:
            candidate_min = min(window_min, sizes[stop])
            candidate_max = max(window_max, sizes[stop])
            if candidate_max > max(candidate_min, 1) * size_ratio:
                break
            window_min, window_max = candidate_min, candidate_max
            stop += 1
        if stop - start >= min_tables:
            return CompactionPlan(start, stop)
        start += 1
    return None


class LeveledConfig:
    """Tuning knobs for the leveled strategy.

    ``l0_compact_tables`` is the hard L0 trigger (the store reuses its
    ``compaction_min_tables`` knob for it by default); ``base_level_bytes``
    is L1's byte budget and each deeper level multiplies it by ``fanout``.
    ``max_output_bytes`` bounds a single merged output table (promotions
    split their output at this size so one merge never produces a table
    that must immediately be re-split).  ``soft_ratio`` scales both
    triggers down for the background compactor's early rounds, smoothing
    work ahead of the hard thresholds instead of bursting at them.

    ``grandparent_limit_factor`` caps how much *next-deeper* level data a
    single merge output may span: while writing outputs into level ``n``
    the store cuts the current output once it has crossed more than
    ``factor * max_output_bytes`` of level ``n + 1``.  Without the cut, a
    workload with cold gaps in its keyspace (e.g. period-partitioned
    index regions) produces "bridge" tables whose key range straddles a
    gap; every later promotion through that range drags the bridge into a
    rewrite.  Cutting at grandparent boundaries keeps outputs aligned
    with the cold runs below them, so they can later sink as
    manifest-only trivial moves.
    """

    __slots__ = (
        "l0_compact_tables",
        "base_level_bytes",
        "fanout",
        "max_output_bytes",
        "soft_ratio",
        "grandparent_limit_factor",
    )

    def __init__(
        self,
        l0_compact_tables: int = 4,
        base_level_bytes: int = 8 * 1024 * 1024,
        fanout: int = 8,
        max_output_bytes: int | None = None,
        soft_ratio: float = 0.75,
        grandparent_limit_factor: int = 8,
    ) -> None:
        if l0_compact_tables < 2:
            raise ValueError("l0_compact_tables must be at least 2")
        if base_level_bytes <= 0:
            raise ValueError("base_level_bytes must be positive")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if not 0.0 < soft_ratio <= 1.0:
            raise ValueError("soft_ratio must be in (0, 1]")
        if grandparent_limit_factor < 1:
            raise ValueError("grandparent_limit_factor must be at least 1")
        self.l0_compact_tables = l0_compact_tables
        self.base_level_bytes = base_level_bytes
        self.fanout = fanout
        self.max_output_bytes = max_output_bytes or base_level_bytes
        self.soft_ratio = soft_ratio
        self.grandparent_limit_factor = grandparent_limit_factor

    def level_target_bytes(self, level: int) -> int:
        """Byte budget for ``level`` (>= 1): base * fanout^(level-1)."""
        return self.base_level_bytes * self.fanout ** (level - 1)


class LeveledPlan:
    """One promotion: ``sources`` at ``level`` merge into overlapping
    ``targets`` at ``level + 1``."""

    __slots__ = ("level", "sources", "targets", "reason")

    def __init__(self, level: int, sources: list, targets: list, reason: str) -> None:
        self.level = level
        self.sources = sources
        self.targets = targets
        self.reason = reason

    @property
    def target_level(self) -> int:
        return self.level + 1

    @property
    def is_trivial_move(self) -> bool:
        """A single disjoint victim can change level without a rewrite.

        Only for L1+ sources: L0 promotions always take every L0 table and
        those may overlap *each other*, so they must go through the merge.
        """
        return self.level >= 1 and len(self.sources) == 1 and not self.targets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LeveledPlan(L{self.level}->L{self.target_level}, "
            f"{len(self.sources)} sources, {len(self.targets)} targets, "
            f"{self.reason})"
        )


def _ranges_overlap(
    lo_a: bytes | None, hi_a: bytes | None, lo_b: bytes | None, hi_b: bytes | None
) -> bool:
    """Closed-interval overlap; an unknown bound means "may span anything"."""
    if lo_a is None or hi_a is None or lo_b is None or hi_b is None:
        return True
    return lo_a <= hi_b and lo_b <= hi_a


def _overlapping(tables: list, lo: bytes | None, hi: bytes | None) -> list:
    return [
        t for t in tables if _ranges_overlap(t.min_key, t.max_key, lo, hi)
    ]


def plan_leveled(
    levels: list[list], config: LeveledConfig, soft: bool = False
) -> LeveledPlan | None:
    """Choose the next promotion, or ``None`` when every level is in shape.

    ``levels[0]`` is L0 in recency order (oldest -> newest); each deeper
    ``levels[n]`` is a key-disjoint run.  Tables expose ``data_bytes``,
    ``min_key`` and ``max_key`` (``None`` bounds are treated as "may
    overlap anything", which is the safe reading for legacy tables whose
    manifest predates key-range tracking).

    Checked shallowest-first so an overflow cascades naturally: promoting
    into L(n+1) may overflow it, and the next round then picks L(n+1).
    ``soft`` scales the triggers by ``soft_ratio`` -- the background
    compactor runs with it to start promotions *before* the hard
    thresholds would force them onto the foreground path.

    The victim for an L1+ promotion is the table whose key range overlaps
    the fewest bytes in the next level (ties to the smallest ``min_key``):
    deterministic, and it steers promotions toward the cheap end of the
    keyspace -- append-mostly workloads promote their cold tail as trivial
    moves instead of rewriting the hot head.
    """
    if not levels:
        return None
    l0 = levels[0]
    l0_trigger = config.l0_compact_tables
    if soft:
        l0_trigger = max(2, int(l0_trigger * config.soft_ratio))
    if len(l0) >= l0_trigger:
        lo: bytes | None = None
        hi: bytes | None = None
        known = all(t.min_key is not None and t.max_key is not None for t in l0)
        if known:
            lo = min(t.min_key for t in l0)
            hi = max(t.max_key for t in l0)
        targets = _overlapping(levels[1], lo, hi) if len(levels) > 1 else []
        return LeveledPlan(0, list(l0), targets, "soft-l0" if soft else "l0")
    for n in range(1, len(levels)):
        tables = levels[n]
        if not tables:
            continue
        threshold = config.level_target_bytes(n)
        if soft:
            threshold = int(threshold * config.soft_ratio)
        if sum(t.data_bytes for t in tables) <= threshold:
            continue
        below = levels[n + 1] if n + 1 < len(levels) else []

        def overlap_cost(table) -> tuple[int, bytes]:
            cost = sum(
                t.data_bytes
                for t in _overlapping(below, table.min_key, table.max_key)
            )
            return cost, table.min_key or b""

        victim = min(tables, key=overlap_cost)
        targets = _overlapping(below, victim.min_key, victim.max_key)
        return LeveledPlan(n, [victim], targets, "soft-overflow" if soft else "overflow")
    return None


def _resolve_key(
    records_newest_first: list[tuple[int, bytes]],
    operator: MergeOperator | None,
    finalize: bool,
) -> tuple[int, bytes] | None:
    """Collapse one key's records; ``None`` means the key can be dropped."""
    pending: list[bytes] = []  # newest first
    for kind, value in records_newest_first:
        if kind == KIND_MERGE:
            pending.append(value)
            continue
        if kind == KIND_PUT:
            if not pending:
                return KIND_PUT, value
            deltas = [decode_value(d) for d in reversed(pending)]
            merged = _require(operator).full_merge(decode_value(value), deltas)
            return KIND_PUT, encode_value(merged)
        # KIND_DELETE: history below the tombstone is dead.
        if pending:
            deltas = [decode_value(d) for d in reversed(pending)]
            merged = _require(operator).full_merge(None, deltas)
            return KIND_PUT, encode_value(merged)
        return None if finalize else (KIND_DELETE, b"")
    # Only merge deltas were found in this run.
    deltas = [decode_value(d) for d in reversed(pending)]
    if finalize:
        merged = _require(operator).full_merge(None, deltas)
        return KIND_PUT, encode_value(merged)
    partial = _require(operator).partial_merge(deltas)
    return KIND_MERGE, encode_value(partial)


def _require(operator: MergeOperator | None) -> MergeOperator:
    if operator is None:
        raise ValueError("merge deltas present but no merge operator registered")
    return operator


def merge_records(
    readers_oldest_first: list[SSTableReader],
    operator_for_key: Callable[[bytes], MergeOperator | None],
    finalize: bool,
) -> Iterator[tuple[int, bytes, bytes]]:
    """K-way merge readers, yielding collapsed ``(kind, key, value)`` records.

    ``finalize`` indicates the run includes the oldest table, allowing
    tombstone dropping and baseless-delta finalisation.
    """
    # rank 0 = newest source, so tuples (key, rank) sort ties newest-first.
    sources = list(reversed(readers_oldest_first))
    heap: list[tuple[bytes, int, int, bytes, Iterator[tuple[bytes, int, bytes]]]] = []
    for rank, reader in enumerate(sources):
        iterator = iter(reader)
        first = next(iterator, None)
        if first is not None:
            key, kind, value = first
            heapq.heappush(heap, (key, rank, kind, value, iterator))
    while heap:
        key = heap[0][0]
        records: list[tuple[int, bytes]] = []
        while heap and heap[0][0] == key:
            _, rank, kind, value, iterator = heapq.heappop(heap)
            records.append((kind, value))
            nxt = next(iterator, None)
            if nxt is not None:
                nkey, nkind, nvalue = nxt
                heapq.heappush(heap, (nkey, rank, nkind, nvalue, iterator))
        resolved = _resolve_key(records, operator_for_key(key), finalize)
        if resolved is not None:
            kind, value = resolved
            yield kind, key, value


class BackgroundCompactor:
    """Daemon thread driving a store's compaction rounds off the write path.

    The store signals :meth:`trigger` after every flush; the worker then
    drains qualifying compaction runs (``store._compaction_round()`` until
    it reports no plan).  Rounds run with ``soft=True``: the leveled
    planner then compacts down to ``soft_ratio`` of each trigger, starting
    promotions early and off the write path so the hard thresholds --
    which the inline (foreground) path enforces -- are rarely hit in a
    burst.  All coordination with foreground reads/writes
    happens inside the store's own locking: the worker merges tables with
    no lock held and swaps the SSTable set atomically under the store's
    write lock, so a crash (or :meth:`stop`) between output and swap leaves
    the pre-compaction tables authoritative.

    Unexpected exceptions are recorded on :attr:`last_error` and counted in
    the store's ``compaction_aborts`` metric instead of killing the thread.
    """

    def __init__(self, store: Any, idle_wait: float = 1.0) -> None:
        self._store = store
        self._idle_wait = idle_wait
        self._wake = threading.Event()
        self._stopped = threading.Event()
        self.last_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="lsm-compactor", daemon=True
        )
        self._thread.start()

    def trigger(self) -> None:
        """Wake the worker (called by the store after a flush)."""
        self._wake.set()

    def stop(self) -> None:
        """Ask the worker to exit and join it (idempotent)."""
        self._stopped.set()
        self._wake.set()
        if self._thread.is_alive():
            self._thread.join()

    def _run(self) -> None:
        from repro.faults.schedule import SimulatedCrash

        while not self._stopped.is_set():
            self._wake.wait(timeout=self._idle_wait)
            self._wake.clear()
            if self._stopped.is_set():
                return
            try:
                while self._store._compaction_round(soft=True):
                    if self._stopped.is_set():
                        return
            except SimulatedCrash as exc:
                # An injected crash means "the process died here": record it
                # and stop compacting -- retrying would mask the crash.
                self.last_error = exc
                return
            except Exception as exc:  # noqa: BLE001 - worker must survive
                self.last_error = exc
                self._store.metrics.bump("compaction_aborts")
