"""Immutable sorted-string-table files.

Two on-disk versions share one reader (dispatch on the header magic).

Version 1 -- uncompressed (written when ``compression`` is off)::

    "RSST1\\n"                                   magic
    data section:    repeated records
                     [u32 klen][key][u8 kind][u32 vlen][value]
    index section:   sparse index, one entry per INDEX_INTERVAL records
                     [u32 klen][key][u64 data offset]
    bloom section:   serialized BloomFilter
    footer:          [u64 index_off][u64 bloom_off][u64 record_count]
                     [u32 crc32(data)] [u32 meta_crc] "RSSTEND\\n"

Version 2 -- block-compressed (written when ``compression`` is set)::

    "RSST2\\n"                                   magic
    data section:    repeated *blocks*, one per sparse-index entry
                     [u8 codec][u32 raw_len][u32 stored_len]
                     [u32 crc32(stored bytes)][stored bytes]
                     where the stored bytes decompress to raw v1 records
    index/bloom/footer: identical to v1 (index offsets point at block
                     headers; the data CRC covers the data section's
                     *file* bytes, headers included)

The per-block CRC is computed over the **compressed** bytes, so a bit
flip in a compressed block is caught before decompression ever runs --
``_load_block`` checks it on every physical read, and :meth:`verify`'s
streaming CRC covers the headers too, which keeps the PR-5 guarantee
that compaction scrubbing detects (never launders) silent corruption.
``codec`` ``0`` is stored verbatim: a block that does not shrink under
compression is written raw, so pathological data costs 13 bytes of
header, never a decompression step.

``meta_crc`` covers the index section, the bloom section *and* the other
footer fields, so any bit flip in the file outside the data section is
caught at open; the data CRC is checked by the explicit
:meth:`SSTableReader.verify` integrity pass (reads never pay for it).

Each SSTable holds at most one record per key (the memtable collapses
duplicate writes), so readers never need per-file sequence numbers; file
recency is tracked by the manifest ordering instead.

Record kinds reuse the WAL constants: ``PUT`` (full value), ``DELETE``
(tombstone) and ``MERGE`` (a combined merge delta whose base lives in some
older file).

Readers are thread-safe: all data access goes through positioned reads
(``os.pread``) or an optional read-only ``mmap`` (``use_mmap=True``), so
concurrent gets/scans never race on a shared file offset.  The mmap path
serves hot blocks and the bloom filter straight from the page cache (the
bloom bits are a zero-copy buffer view); it is disabled automatically
under an active fault schedule, where every byte must flow through the
shim-visible file path.  Data is read one *block* at a time -- the byte
range between two consecutive sparse-index entries -- optionally through
a shared :class:`~repro.kvstore.cache.BlockCache` of parsed records.
"""

from __future__ import annotations

import itertools
import mmap
import os
import struct
import threading
import zlib
from bisect import bisect_right
from typing import Iterable, Iterator

from repro.faults.io import REAL_IO
from repro.kvstore import blockcodec
from repro.kvstore.api import CorruptSSTableError
from repro.kvstore.blockcodec import CODEC_NONE
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.cache import BlockCache

MAGIC = b"RSST1\n"
MAGIC_V2 = b"RSST2\n"
END_MAGIC = b"RSSTEND\n"
INDEX_INTERVAL = 16

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_FOOTER = struct.Struct(">QQQII")
#: v2 block header: codec id, raw (decompressed) len, stored len, crc32(stored)
_BLOCK_HEADER = struct.Struct(">BIII")


class SSTableWriter:
    """Streams sorted records into a new SSTable file.

    ``compression`` selects the v2 block codec (``"zlib"``/``"zstd"``);
    ``None`` keeps the byte-identical v1 format.  After :meth:`finish`,
    :attr:`compressed_blocks` and :attr:`raw_data_bytes` report how many
    blocks actually shrank and the pre-compression data size.
    """

    def __init__(
        self,
        path: str,
        expected_records: int = 1024,
        io=None,
        compression: str | None = None,
    ) -> None:
        self._path = path
        self._tmp_path = path + ".tmp"
        self._io = io or REAL_IO
        self._codec = blockcodec.resolve_compression(compression)
        self._version = 2 if self._codec != CODEC_NONE else 1
        self._file = self._io.open(self._tmp_path, "wb")
        self._file.write(MAGIC if self._version == 1 else MAGIC_V2)
        self._bloom = BloomFilter.with_capacity(expected_records)
        self._index: list[tuple[bytes, int]] = []
        self._block_buf = bytearray()
        self._count = 0
        self._data_crc = 0
        self._last_key: bytes | None = None
        #: key-range bounds of the finished table (recorded in manifest v2
        #: so the leveled planner can reason about overlap without I/O)
        self.first_key: bytes | None = None
        self.compressed_blocks = 0
        self.raw_data_bytes = 0

    def add(self, key: bytes, kind: int, value: bytes) -> None:
        """Append one record; keys must arrive in strictly increasing order."""
        if self._last_key is not None and key <= self._last_key:
            raise ValueError("SSTable records must be added in strictly increasing key order")
        if self.first_key is None:
            self.first_key = key
        self._last_key = key
        if self._count % INDEX_INTERVAL == 0:
            if self._version == 2:
                self._flush_block()
            self._index.append((key, self._file.tell()))
        self._bloom.add(key)
        record = (
            _U32.pack(len(key)) + key + bytes((kind,)) + _U32.pack(len(value)) + value
        )
        self.raw_data_bytes += len(record)
        if self._version == 2:
            self._block_buf.extend(record)
        else:
            self._data_crc = zlib.crc32(record, self._data_crc)
            self._file.write(record)
        self._count += 1

    def _flush_block(self) -> None:
        """Seal the buffered records as one v2 block (header + stored bytes)."""
        if not self._block_buf:
            return
        raw = bytes(self._block_buf)
        self._block_buf.clear()
        stored = blockcodec.compress(self._codec, raw)
        used = self._codec
        if len(stored) >= len(raw):
            stored, used = raw, CODEC_NONE  # incompressible: store verbatim
        else:
            self.compressed_blocks += 1
        block = (
            _BLOCK_HEADER.pack(used, len(raw), len(stored), zlib.crc32(stored))
            + stored
        )
        self._data_crc = zlib.crc32(block, self._data_crc)
        self._file.write(block)

    def finish(
        self,
        cache: BlockCache | None = None,
        use_mmap: bool = False,
        metrics=None,
    ) -> "SSTableReader":
        """Seal the file (atomically renamed into place) and open a reader."""
        if self._version == 2:
            self._flush_block()
        index_off = self._file.tell()
        index_buf = bytearray()
        for key, offset in self._index:
            index_buf.extend(_U32.pack(len(key)))
            index_buf.extend(key)
            index_buf.extend(_U64.pack(offset))
        bloom_buf = self._bloom.to_bytes()
        bloom_off = index_off + len(index_buf)
        self._file.write(index_buf)
        self._file.write(bloom_buf)
        fields = struct.pack(">QQQI", index_off, bloom_off, self._count, self._data_crc)
        meta_crc = zlib.crc32(bytes(index_buf) + bloom_buf + fields)
        self._file.write(fields)
        self._file.write(struct.pack(">I", meta_crc))
        self._file.write(END_MAGIC)
        self._file.flush()
        self._io.fsync(self._file)
        self._file.close()
        self._io.replace(self._tmp_path, self._path)
        # Durably commit the rename itself: without the directory fsync an
        # ext4-style journal replay can resurrect the pre-rename dentry and
        # lose a fully-synced table.
        self._io.fsync_dir(os.path.dirname(self._path) or ".")
        return SSTableReader(
            self._path, cache=cache, io=self._io, use_mmap=use_mmap, metrics=metrics
        )

    @property
    def last_key(self) -> bytes | None:
        """Largest key written so far (``None`` for an empty table)."""
        return self._last_key

    def abort(self) -> None:
        """Discard a partially written table."""
        self._file.close()
        if os.path.exists(self._tmp_path):
            os.remove(self._tmp_path)


class SSTableReader:
    """Random and sequential access over a sealed SSTable (thread-safe).

    ``use_mmap=True`` maps the file read-only and serves block reads and
    bloom probes from the mapping (page cache) instead of ``pread``; the
    knob silently degrades to ``pread`` when the file cannot be mapped or
    when ``io`` carries a fault schedule (injected faults must see every
    read).  ``metrics`` is an optional ``StoreMetrics`` whose
    ``mmap_block_hits`` counter is bumped per block served via the map and
    whose ``block_reads`` counter is bumped per physical data-block load.

    ``lazy=True`` defers the meta section (sparse index + bloom filter +
    meta CRC check) until the first operation that needs it: open then
    costs two preads of the footer tail regardless of table size, which
    is what makes ``LSMStore`` reopen O(manifest).  Corruption in the
    deferred section still surfaces as :class:`CorruptSSTableError` --
    at first read, or at :meth:`verify` which materializes it eagerly.
    """

    _uids = itertools.count(1)

    def __init__(
        self,
        path: str,
        cache: BlockCache | None = None,
        io=None,
        use_mmap: bool = False,
        metrics=None,
        lazy: bool = False,
    ) -> None:
        self._path = path
        self._io = io or REAL_IO
        self._file = self._io.open(path, "rb")
        self._fd = self._file.fileno()
        self._cache = cache
        self._metrics = metrics
        self._uid = next(SSTableReader._uids)
        #: store-level placement metadata (set by the LSM store from the
        #: manifest or the flush/compaction writer; a bare reader is "L0
        #: with unknown key range", which every planner treats safely).
        self.level = 0
        self.min_key: bytes | None = None
        self.max_key: bytes | None = None
        self._meta_lock = threading.Lock()
        self._meta_loaded = False
        self._lazy = lazy
        self._mm: mmap.mmap | None = None
        if use_mmap and not hasattr(self._io, "schedule"):
            try:
                self._mm = mmap.mmap(self._fd, 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):  # empty file / unmappable fs
                self._mm = None
        try:
            self._load_footer()
            if not lazy:
                self._ensure_meta()
        except BaseException:
            if self._mm is not None:
                self._mm.close()
            self._file.close()
            raise

    def _read_at(self, offset: int, length: int) -> bytes:
        if self._mm is not None:
            return self._mm[offset : offset + length]
        return os.pread(self._fd, length, offset)

    def _load_footer(self) -> None:
        """Parse the fixed-size footer tail: a few tens of bytes of pread.

        This is the *entire* open-time cost of a lazy reader -- record
        count, section offsets and both CRCs come from here; the meta
        section (sparse index + bloom filter) is only read and checked by
        :meth:`_ensure_meta` on first use.
        """
        size = os.fstat(self._fd).st_size
        tail = _FOOTER.size + len(END_MAGIC)
        if size < len(MAGIC) + tail:
            raise CorruptSSTableError(f"SSTable {self._path} too small")
        footer = self._read_at(size - tail, _FOOTER.size)
        magic = self._read_at(size - tail + _FOOTER.size, len(END_MAGIC))
        if magic != END_MAGIC:
            raise CorruptSSTableError(f"SSTable {self._path} missing end magic")
        index_off, bloom_off, count, data_crc, meta_crc = _FOOTER.unpack(footer)
        if not len(MAGIC) <= index_off <= bloom_off <= size - tail:
            raise CorruptSSTableError(
                f"SSTable {self._path} has implausible offsets"
            )
        header = self._read_at(0, len(MAGIC))
        if header == MAGIC:
            self._version = 1
        elif header == MAGIC_V2:
            self._version = 2
        else:
            raise CorruptSSTableError(f"SSTable {self._path} missing header magic")
        self._data_crc = data_crc
        self._meta_crc = meta_crc
        self._footer_fields = footer[: struct.calcsize(">QQQI")]
        self._index_off = index_off
        self._bloom_off = bloom_off
        self._meta_end = size - tail
        self._count = count
        self._data_end = index_off
        self._raw_data_bytes: int | None = None

    def _ensure_meta(self) -> None:
        """Materialize (and CRC-check) the sparse index + bloom filter.

        Idempotent and thread-safe; every meta consumer calls it first.
        For a ``lazy`` reader this is the deferred half of open --
        ``lazy_meta_loads`` counts how many tables actually paid it.
        """
        if self._meta_loaded:
            return
        with self._meta_lock:
            if self._meta_loaded:
                return
            self._load_meta()
            if self._lazy and self._metrics is not None:
                self._metrics.bump("lazy_meta_loads")
            self._meta_loaded = True

    def _load_meta(self) -> None:
        index_off = self._index_off
        bloom_off = self._bloom_off
        meta = self._read_at(index_off, self._meta_end - index_off)
        if zlib.crc32(meta + self._footer_fields) != self._meta_crc:
            raise CorruptSSTableError(
                f"SSTable {self._path} metadata CRC mismatch"
            )
        index_buf = meta[: bloom_off - index_off]
        # The meta CRC already vouches for these bytes, but a writer bug (or
        # a collision-lucky flip) must still surface as a *typed* error --
        # never a raw struct.error/IndexError from the parse below.
        try:
            if self._mm is not None:
                # Zero-copy: bloom bits stay in the page cache via the map.
                self._bloom = BloomFilter.from_buffer(
                    memoryview(self._mm)[bloom_off : self._meta_end]
                )
            else:
                self._bloom = BloomFilter.from_bytes(meta[bloom_off - index_off :])
        except (struct.error, ValueError, IndexError) as exc:
            raise CorruptSSTableError(
                f"SSTable {self._path} has a truncated or corrupt bloom "
                f"filter: {exc}"
            ) from None
        self._index_keys: list[bytes] = []
        self._index_offsets: list[int] = []
        pos = 0
        try:
            while pos < len(index_buf):
                (klen,) = _U32.unpack_from(index_buf, pos)
                pos += 4
                if pos + klen + 8 > len(index_buf):
                    raise CorruptSSTableError(
                        f"SSTable {self._path} sparse index truncated"
                    )
                self._index_keys.append(index_buf[pos : pos + klen])
                pos += klen
                (offset,) = _U64.unpack_from(index_buf, pos)
                pos += 8
                self._index_offsets.append(offset)
        except struct.error as exc:
            raise CorruptSSTableError(
                f"SSTable {self._path} sparse index unparseable: {exc}"
            ) from None
        for offset in self._index_offsets:
            if not len(MAGIC) <= offset < index_off:
                raise CorruptSSTableError(
                    f"SSTable {self._path} sparse-index entry points past "
                    f"the data section (offset {offset})"
                )

    @property
    def path(self) -> str:
        return self._path

    @property
    def format_version(self) -> int:
        """On-disk format: 1 (uncompressed) or 2 (block-compressed)."""
        return self._version

    @property
    def mmap_active(self) -> bool:
        """Whether reads are being served from a memory map."""
        return self._mm is not None

    def verify(self) -> None:
        """Full integrity check: metadata CRC, then the data-section CRC.

        Point reads and scans stay checksum-free (the index/bloom path is
        covered by the meta CRC when it materializes); call this for
        explicit scrubbing, e.g. after restoring a backup.  A lazy reader
        materializes its metadata here first -- scrubbing must surface a
        flipped bit in the index or bloom filter even if no read ever
        touched the table, preserving the crash-harness contract that
        ``verify()`` detects any planted corruption.  The streaming CRC
        then covers every data-section byte -- for v2 files that includes
        each block header *and* its compressed payload, so a flip
        anywhere is caught without paying for decompression.  Raises
        :class:`CorruptSSTableError` on mismatch.
        """
        self._ensure_meta()
        offset = len(MAGIC)
        remaining = self._data_end - offset
        crc = 0
        while remaining > 0:
            chunk = self._read_at(offset, min(1 << 20, remaining))
            if not chunk:
                raise CorruptSSTableError(f"SSTable {self._path} data truncated")
            crc = zlib.crc32(chunk, crc)
            offset += len(chunk)
            remaining -= len(chunk)
        if crc != self._data_crc:
            raise CorruptSSTableError(f"SSTable {self._path} data CRC mismatch")

    @property
    def record_count(self) -> int:
        return self._count

    @property
    def data_bytes(self) -> int:
        """On-disk size of the data section (used by size-tiered compaction)."""
        return self._data_end - len(MAGIC)

    @property
    def raw_data_bytes(self) -> int:
        """Pre-compression size of the data section.

        Equals :attr:`data_bytes` for v1 files; for v2 it sums the
        ``raw_len`` fields of the block headers (one 13-byte read per
        block, computed lazily and cached).
        """
        if self._raw_data_bytes is None:
            if self._version == 1:
                self._raw_data_bytes = self.data_bytes
            else:
                self._ensure_meta()
                total = 0
                for slot in range(len(self._index_offsets)):
                    start, end = self._block_bounds(slot)
                    header = self._read_at(start, _BLOCK_HEADER.size)
                    if len(header) != _BLOCK_HEADER.size:
                        raise CorruptSSTableError(
                            f"SSTable {self._path} truncated block header"
                        )
                    total += _BLOCK_HEADER.unpack(header)[1]
                self._raw_data_bytes = total
        return self._raw_data_bytes

    def may_contain(self, key: bytes) -> bool:
        """Bloom-filter pre-check (false positives possible, negatives exact)."""
        self._ensure_meta()
        return key in self._bloom

    def get(self, key: bytes) -> tuple[int, bytes] | None:
        """Return ``(kind, value)`` for ``key`` or ``None``."""
        self._ensure_meta()
        if not self._index_keys or key not in self._bloom:
            return None
        slot = bisect_right(self._index_keys, key) - 1
        if slot < 0:
            return None
        for rec_key, kind, value in self._load_block(slot):
            if rec_key == key:
                return kind, value
            if rec_key > key:
                return None
        return None

    def get_many(self, keys: list[bytes]) -> dict[bytes, tuple[int, bytes]]:
        """Point-read many keys, sharing block loads between neighbours.

        ``keys`` must be sorted ascending; block slots are then
        non-decreasing, so each data block is loaded (and cache-probed) at
        most once per batch instead of once per key.  Callers are expected
        to pre-filter with :meth:`may_contain`; absent keys are simply
        missing from the returned dict.
        """
        self._ensure_meta()
        found: dict[bytes, tuple[int, bytes]] = {}
        if not self._index_keys:
            return found
        last_slot = -1
        records: list[tuple[bytes, int, bytes]] = []
        for key in keys:
            slot = bisect_right(self._index_keys, key) - 1
            if slot < 0:
                continue
            if slot != last_slot:
                records = self._load_block(slot)
                last_slot = slot
            for rec_key, kind, value in records:
                if rec_key == key:
                    found[key] = (kind, value)
                    break
                if rec_key > key:
                    break
        return found

    # -- block access ------------------------------------------------------

    def _block_bounds(self, slot: int) -> tuple[int, int]:
        start = self._index_offsets[slot]
        if slot + 1 < len(self._index_offsets):
            return start, self._index_offsets[slot + 1]
        return start, self._data_end

    def _load_block(
        self, slot: int, fill_cache: bool = True
    ) -> list[tuple[bytes, int, bytes]]:
        """Read one sparse-index block as parsed records (cache read-through).

        ``fill_cache=False`` (sequential scans, compaction) still profits
        from already-cached blocks but does not insert, so one full-table
        sweep cannot wash the working set out of the cache.
        """
        if self._cache is not None:
            cached = self._cache.get((self._uid, slot))
            if cached is not None:
                return cached
        start, end = self._block_bounds(slot)
        buf = self._read_at(start, end - start)
        if len(buf) != end - start:
            raise CorruptSSTableError(f"SSTable {self._path} data truncated")
        if self._metrics is not None:
            # Physical data-block loads (cache misses included, cache hits
            # not): the lazy-reopen regression test asserts this stays 0
            # across a reopen until the first read arrives.
            self._metrics.bump("block_reads")
            if self._mm is not None:
                self._metrics.bump("mmap_block_hits")
        if self._version == 2:
            buf = self._decode_block(buf)
        records = self._parse_block(buf)
        if self._cache is not None and fill_cache:
            self._cache.put((self._uid, slot), records, weight=max(1, len(buf)))
        return records

    def _decode_block(self, buf: bytes) -> bytes:
        """Check a v2 block's CRC (over the stored bytes) and decompress it."""
        if len(buf) < _BLOCK_HEADER.size:
            raise CorruptSSTableError(f"SSTable {self._path} truncated block header")
        codec, raw_len, stored_len, crc = _BLOCK_HEADER.unpack_from(buf, 0)
        stored = buf[_BLOCK_HEADER.size :]
        if len(stored) != stored_len:
            raise CorruptSSTableError(
                f"SSTable {self._path} block length mismatch "
                f"(header says {stored_len}, block spans {len(stored)})"
            )
        if zlib.crc32(stored) != crc:
            raise CorruptSSTableError(
                f"SSTable {self._path} block CRC mismatch (compressed bytes)"
            )
        try:
            return blockcodec.decompress(codec, stored, raw_len)
        except ValueError as exc:
            raise CorruptSSTableError(
                f"SSTable {self._path} block failed to decompress: {exc}"
            ) from None

    def _parse_block(self, buf: bytes) -> list[tuple[bytes, int, bytes]]:
        records: list[tuple[bytes, int, bytes]] = []
        pos = 0
        total = len(buf)
        while pos < total:
            if pos + 4 > total:
                raise CorruptSSTableError(f"SSTable {self._path} truncated record header")
            (klen,) = _U32.unpack_from(buf, pos)
            pos += 4
            if pos + klen + 5 > total:
                raise CorruptSSTableError(f"SSTable {self._path} truncated record")
            key = buf[pos : pos + klen]
            pos += klen
            kind = buf[pos]
            pos += 1
            (vlen,) = _U32.unpack_from(buf, pos)
            pos += 4
            if pos + vlen > total:
                raise CorruptSSTableError(f"SSTable {self._path} truncated record value")
            value = buf[pos : pos + vlen]
            pos += vlen
            records.append((key, kind, value))
        return records

    def __iter__(self) -> Iterator[tuple[bytes, int, bytes]]:
        """Yield all ``(key, kind, value)`` records in key order."""
        self._ensure_meta()
        for slot in range(len(self._index_offsets)):
            yield from self._load_block(slot, fill_cache=False)

    def iter_from_key(self, start: bytes) -> Iterator[tuple[bytes, int, bytes]]:
        """Yield records with ``key >= start`` in key order."""
        self._ensure_meta()
        if not self._index_keys:
            return
        first = max(0, bisect_right(self._index_keys, start) - 1)
        for slot in range(first, len(self._index_offsets)):
            for key, kind, value in self._load_block(slot, fill_cache=False):
                if key >= start:
                    yield key, kind, value

    def close(self, evict_blocks: bool = True) -> None:
        """Release the file handle (and mmap) and drop cached blocks.

        ``evict_blocks=False`` skips the per-reader cache sweep; callers
        retiring many readers at once (a compaction swap) batch-evict via
        :meth:`BlockCache.evict_owners` instead of paying one full cache
        scan per closed table.
        """
        if evict_blocks and self._cache is not None:
            self._cache.evict_owner(self._uid)
        if self._mm is not None:
            if self._meta_loaded:
                # The bloom filter may hold a zero-copy view into the map;
                # drop it first so closing the map cannot fault a live probe.
                self._bloom = BloomFilter.from_bytes(self._bloom.to_bytes())
            self._mm.close()
            self._mm = None
        self._file.close()


def write_sstable(
    path: str,
    records: Iterable[tuple[bytes, int, bytes]],
    expected_records: int = 1024,
    compression: str | None = None,
) -> SSTableReader:
    """Write ``records`` (sorted by key) to ``path`` and return a reader."""
    writer = SSTableWriter(path, expected_records, compression=compression)
    try:
        for key, kind, value in records:
            writer.add(key, kind, value)
    except BaseException:
        writer.abort()
        raise
    return writer.finish()
