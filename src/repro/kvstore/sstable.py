"""Immutable sorted-string-table files.

Layout (all integers big-endian)::

    "RSST1\\n"                                   magic
    data section:    repeated records
                     [u32 klen][key][u8 kind][u32 vlen][value]
    index section:   sparse index, one entry per INDEX_INTERVAL records
                     [u32 klen][key][u64 data offset]
    bloom section:   serialized BloomFilter
    footer:          [u64 index_off][u64 bloom_off][u64 record_count]
                     [u32 crc32(data)] [u32 meta_crc] "RSSTEND\\n"

    ``meta_crc`` covers the index section, the bloom section *and* the other
    footer fields, so any bit flip in the file outside the data section is
    caught at open; the data CRC is checked by the explicit
    :meth:`SSTableReader.verify` integrity pass (reads never pay for it)

Each SSTable holds at most one record per key (the memtable collapses
duplicate writes), so readers never need per-file sequence numbers; file
recency is tracked by the manifest ordering instead.

Record kinds reuse the WAL constants: ``PUT`` (full value), ``DELETE``
(tombstone) and ``MERGE`` (a combined merge delta whose base lives in some
older file).

Readers are thread-safe: all data access goes through positioned reads
(``os.pread``), so concurrent gets/scans never race on a shared file
offset.  Data is read one *block* at a time -- the byte range between two
consecutive sparse-index entries -- optionally through a shared
:class:`~repro.kvstore.cache.BlockCache` of parsed records.
"""

from __future__ import annotations

import itertools
import os
import struct
import zlib
from bisect import bisect_right
from typing import Iterable, Iterator

from repro.faults.io import REAL_IO
from repro.kvstore.api import CorruptSSTableError
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.cache import BlockCache

MAGIC = b"RSST1\n"
END_MAGIC = b"RSSTEND\n"
INDEX_INTERVAL = 16

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_FOOTER = struct.Struct(">QQQII")


class SSTableWriter:
    """Streams sorted records into a new SSTable file."""

    def __init__(self, path: str, expected_records: int = 1024, io=None) -> None:
        self._path = path
        self._tmp_path = path + ".tmp"
        self._io = io or REAL_IO
        self._file = self._io.open(self._tmp_path, "wb")
        self._file.write(MAGIC)
        self._bloom = BloomFilter.with_capacity(expected_records)
        self._index: list[tuple[bytes, int]] = []
        self._count = 0
        self._data_crc = 0
        self._last_key: bytes | None = None

    def add(self, key: bytes, kind: int, value: bytes) -> None:
        """Append one record; keys must arrive in strictly increasing order."""
        if self._last_key is not None and key <= self._last_key:
            raise ValueError("SSTable records must be added in strictly increasing key order")
        self._last_key = key
        if self._count % INDEX_INTERVAL == 0:
            self._index.append((key, self._file.tell()))
        self._bloom.add(key)
        record = (
            _U32.pack(len(key)) + key + bytes((kind,)) + _U32.pack(len(value)) + value
        )
        self._data_crc = zlib.crc32(record, self._data_crc)
        self._file.write(record)
        self._count += 1

    def finish(self, cache: BlockCache | None = None) -> "SSTableReader":
        """Seal the file (atomically renamed into place) and open a reader."""
        index_off = self._file.tell()
        index_buf = bytearray()
        for key, offset in self._index:
            index_buf.extend(_U32.pack(len(key)))
            index_buf.extend(key)
            index_buf.extend(_U64.pack(offset))
        bloom_buf = self._bloom.to_bytes()
        bloom_off = index_off + len(index_buf)
        self._file.write(index_buf)
        self._file.write(bloom_buf)
        fields = struct.pack(">QQQI", index_off, bloom_off, self._count, self._data_crc)
        meta_crc = zlib.crc32(bytes(index_buf) + bloom_buf + fields)
        self._file.write(fields)
        self._file.write(struct.pack(">I", meta_crc))
        self._file.write(END_MAGIC)
        self._file.flush()
        self._io.fsync(self._file)
        self._file.close()
        self._io.replace(self._tmp_path, self._path)
        return SSTableReader(self._path, cache=cache, io=self._io)

    def abort(self) -> None:
        """Discard a partially written table."""
        self._file.close()
        if os.path.exists(self._tmp_path):
            os.remove(self._tmp_path)


class SSTableReader:
    """Random and sequential access over a sealed SSTable (thread-safe)."""

    _uids = itertools.count(1)

    def __init__(
        self, path: str, cache: BlockCache | None = None, io=None
    ) -> None:
        self._path = path
        self._file = (io or REAL_IO).open(path, "rb")
        self._fd = self._file.fileno()
        self._cache = cache
        self._uid = next(SSTableReader._uids)
        self._load_footer()

    def _load_footer(self) -> None:
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        tail = _FOOTER.size + len(END_MAGIC)
        if size < len(MAGIC) + tail:
            raise CorruptSSTableError(f"SSTable {self._path} too small")
        self._file.seek(size - tail)
        footer = self._file.read(_FOOTER.size)
        magic = self._file.read(len(END_MAGIC))
        if magic != END_MAGIC:
            raise CorruptSSTableError(f"SSTable {self._path} missing end magic")
        index_off, bloom_off, count, data_crc, meta_crc = _FOOTER.unpack(footer)
        if not len(MAGIC) <= index_off <= bloom_off <= size - tail:
            raise CorruptSSTableError(
                f"SSTable {self._path} has implausible offsets"
            )
        self._file.seek(0)
        if self._file.read(len(MAGIC)) != MAGIC:
            raise CorruptSSTableError(f"SSTable {self._path} missing header magic")
        self._file.seek(index_off)
        meta = self._file.read(size - tail - index_off)
        fields = footer[: struct.calcsize(">QQQI")]
        if zlib.crc32(meta + fields) != meta_crc:
            raise CorruptSSTableError(
                f"SSTable {self._path} metadata CRC mismatch"
            )
        self._data_crc = data_crc
        index_buf = meta[: bloom_off - index_off]
        bloom_buf = meta[bloom_off - index_off :]
        # The meta CRC already vouches for these bytes, but a writer bug (or
        # a collision-lucky flip) must still surface as a *typed* error --
        # never a raw struct.error/IndexError from the parse below.
        try:
            self._bloom = BloomFilter.from_bytes(bloom_buf)
        except (struct.error, ValueError, IndexError) as exc:
            raise CorruptSSTableError(
                f"SSTable {self._path} has a truncated or corrupt bloom "
                f"filter: {exc}"
            ) from None
        self._index_keys: list[bytes] = []
        self._index_offsets: list[int] = []
        pos = 0
        try:
            while pos < len(index_buf):
                (klen,) = _U32.unpack_from(index_buf, pos)
                pos += 4
                if pos + klen + 8 > len(index_buf):
                    raise CorruptSSTableError(
                        f"SSTable {self._path} sparse index truncated"
                    )
                self._index_keys.append(index_buf[pos : pos + klen])
                pos += klen
                (offset,) = _U64.unpack_from(index_buf, pos)
                pos += 8
                self._index_offsets.append(offset)
        except struct.error as exc:
            raise CorruptSSTableError(
                f"SSTable {self._path} sparse index unparseable: {exc}"
            ) from None
        for offset in self._index_offsets:
            if not len(MAGIC) <= offset < index_off:
                raise CorruptSSTableError(
                    f"SSTable {self._path} sparse-index entry points past "
                    f"the data section (offset {offset})"
                )
        self._count = count
        self._data_end = index_off

    @property
    def path(self) -> str:
        return self._path

    def verify(self) -> None:
        """Full integrity check of the data section against its CRC.

        Point reads and scans stay checksum-free (the index/bloom path is
        covered at open); call this for explicit scrubbing, e.g. after
        restoring a backup.  Raises :class:`CorruptSSTableError` on mismatch.
        """
        offset = len(MAGIC)
        remaining = self._data_end - offset
        crc = 0
        while remaining > 0:
            chunk = os.pread(self._fd, min(1 << 20, remaining), offset)
            if not chunk:
                raise CorruptSSTableError(f"SSTable {self._path} data truncated")
            crc = zlib.crc32(chunk, crc)
            offset += len(chunk)
            remaining -= len(chunk)
        if crc != self._data_crc:
            raise CorruptSSTableError(f"SSTable {self._path} data CRC mismatch")

    @property
    def record_count(self) -> int:
        return self._count

    @property
    def data_bytes(self) -> int:
        """Size of the data section (used by size-tiered compaction)."""
        return self._data_end - len(MAGIC)

    def may_contain(self, key: bytes) -> bool:
        """Bloom-filter pre-check (false positives possible, negatives exact)."""
        return key in self._bloom

    def get(self, key: bytes) -> tuple[int, bytes] | None:
        """Return ``(kind, value)`` for ``key`` or ``None``."""
        if not self._index_keys or key not in self._bloom:
            return None
        slot = bisect_right(self._index_keys, key) - 1
        if slot < 0:
            return None
        for rec_key, kind, value in self._load_block(slot):
            if rec_key == key:
                return kind, value
            if rec_key > key:
                return None
        return None

    def get_many(self, keys: list[bytes]) -> dict[bytes, tuple[int, bytes]]:
        """Point-read many keys, sharing block loads between neighbours.

        ``keys`` must be sorted ascending; block slots are then
        non-decreasing, so each data block is loaded (and cache-probed) at
        most once per batch instead of once per key.  Callers are expected
        to pre-filter with :meth:`may_contain`; absent keys are simply
        missing from the returned dict.
        """
        found: dict[bytes, tuple[int, bytes]] = {}
        if not self._index_keys:
            return found
        last_slot = -1
        records: list[tuple[bytes, int, bytes]] = []
        for key in keys:
            slot = bisect_right(self._index_keys, key) - 1
            if slot < 0:
                continue
            if slot != last_slot:
                records = self._load_block(slot)
                last_slot = slot
            for rec_key, kind, value in records:
                if rec_key == key:
                    found[key] = (kind, value)
                    break
                if rec_key > key:
                    break
        return found

    # -- block access ------------------------------------------------------

    def _block_bounds(self, slot: int) -> tuple[int, int]:
        start = self._index_offsets[slot]
        if slot + 1 < len(self._index_offsets):
            return start, self._index_offsets[slot + 1]
        return start, self._data_end

    def _load_block(
        self, slot: int, fill_cache: bool = True
    ) -> list[tuple[bytes, int, bytes]]:
        """Read one sparse-index block as parsed records (cache read-through).

        ``fill_cache=False`` (sequential scans, compaction) still profits
        from already-cached blocks but does not insert, so one full-table
        sweep cannot wash the working set out of the cache.
        """
        if self._cache is not None:
            cached = self._cache.get((self._uid, slot))
            if cached is not None:
                return cached
        start, end = self._block_bounds(slot)
        buf = os.pread(self._fd, end - start, start)
        if len(buf) != end - start:
            raise CorruptSSTableError(f"SSTable {self._path} data truncated")
        records = self._parse_block(buf)
        if self._cache is not None and fill_cache:
            self._cache.put((self._uid, slot), records, weight=max(1, len(buf)))
        return records

    def _parse_block(self, buf: bytes) -> list[tuple[bytes, int, bytes]]:
        records: list[tuple[bytes, int, bytes]] = []
        pos = 0
        total = len(buf)
        while pos < total:
            if pos + 4 > total:
                raise CorruptSSTableError(f"SSTable {self._path} truncated record header")
            (klen,) = _U32.unpack_from(buf, pos)
            pos += 4
            if pos + klen + 5 > total:
                raise CorruptSSTableError(f"SSTable {self._path} truncated record")
            key = buf[pos : pos + klen]
            pos += klen
            kind = buf[pos]
            pos += 1
            (vlen,) = _U32.unpack_from(buf, pos)
            pos += 4
            if pos + vlen > total:
                raise CorruptSSTableError(f"SSTable {self._path} truncated record value")
            value = buf[pos : pos + vlen]
            pos += vlen
            records.append((key, kind, value))
        return records

    def __iter__(self) -> Iterator[tuple[bytes, int, bytes]]:
        """Yield all ``(key, kind, value)`` records in key order."""
        for slot in range(len(self._index_offsets)):
            yield from self._load_block(slot, fill_cache=False)

    def iter_from_key(self, start: bytes) -> Iterator[tuple[bytes, int, bytes]]:
        """Yield records with ``key >= start`` in key order."""
        if not self._index_keys:
            return
        first = max(0, bisect_right(self._index_keys, start) - 1)
        for slot in range(first, len(self._index_offsets)):
            for key, kind, value in self._load_block(slot, fill_cache=False):
                if key >= start:
                    yield key, kind, value

    def close(self) -> None:
        if self._cache is not None:
            self._cache.evict_owner(self._uid)
        self._file.close()


def write_sstable(
    path: str, records: Iterable[tuple[bytes, int, bytes]], expected_records: int = 1024
) -> SSTableReader:
    """Write ``records`` (sorted by key) to ``path`` and return a reader."""
    writer = SSTableWriter(path, expected_records)
    try:
        for key, kind, value in records:
            writer.add(key, kind, value)
    except BaseException:
        writer.abort()
        raise
    return writer.finish()
