"""Durable LSM-tree implementation of :class:`~repro.kvstore.api.KeyValueStore`.

Directory layout::

    <path>/MANIFEST            JSON: tables, SSTable list, flush watermark
    <path>/wal.log             active write-ahead log
    <path>/wal-<n>.log         frozen WAL segments awaiting a flush
    <path>/sst-<n>.sst         immutable sorted tables (oldest = lowest n
                               position in the manifest list)

Write path: WAL append -> memtable; the memtable flushes to a new SSTable
once it exceeds ``memtable_flush_bytes``.  Read path: active memtable, then
the sealed (flushing) memtable, then SSTables newest-to-oldest, combining
merge deltas with the table's merge operator.  Size-tiered compaction keeps
the SSTable count bounded.

Keys are namespaced by a 2-byte table id so one physical file set serves all
logical tables, exactly as a Cassandra keyspace does.

Concurrency model (thread-safe since the serving-layer rework):

* A write-preferring :class:`~repro.kvstore.locks.RWLock` guards all
  in-memory state; gets/scans share it, mutations are exclusive.  The write
  side is held only for in-memory work -- never across flush or compaction
  disk I/O.
* **Flush handoff**: a flush seals the active memtable into an immutable
  one and rotates the WAL (both O(1), under the write lock), builds the
  SSTable from the sealed memtable with *no* lock held, then installs the
  reader and manifest under the write lock again.  Readers consult the
  sealed memtable in the meantime, so reads never block behind a flush.
  If the SSTable build fails (e.g. ENOSPC), the sealed memtable is kept as
  a *pending* handoff: it stays readable, its frozen WAL segment stays on
  disk, and every later flush retries it before sealing anything new -- an
  acknowledged write is never dropped by a failed flush.
* **Compaction** (inline after a flush, or on a
  :class:`~repro.kvstore.compaction.BackgroundCompactor` thread) merges a
  snapshot of the run lock-free, CRC-verifies the candidate output, and
  atomically swaps the SSTable set + manifest under the write lock.  A
  corrupt candidate aborts the swap (``compaction_aborts`` metric) and
  reads keep serving from the pre-compaction tables; a crash between
  output and swap leaves an orphan file the manifest never references.
* WAL rotation means flushes delete fully-persisted frozen segments
  instead of truncating a shared file, so writes that raced past a seal
  are never lost; replay applies every segment, filtered by the manifest's
  flush watermark.
"""

from __future__ import annotations

import heapq
import json
import os
import re
import struct
import threading
from typing import Any, Callable, Iterable, Iterator

from repro.faults.io import REAL_IO
from repro.kvstore.api import (
    CorruptionError,
    KeyValueStore,
    MergeUnsupportedError,
    StoreClosedError,
    UnknownTableError,
    normalize_key,
)
from repro.kvstore.cache import BlockCache
from repro.kvstore.compaction import (
    BackgroundCompactor,
    LeveledConfig,
    LeveledPlan,
    merge_records,
    plan_leveled,
    plan_size_tiered,
)
from repro.kvstore.encoding import (
    Key,
    KeyPart,
    decode_key,
    decode_value,
    encode_key,
    encode_value,
)
from repro.kvstore import blockcodec
from repro.kvstore.locks import RWLock
from repro.kvstore.memtable import (
    BASE_DELETE,
    BASE_PUT,
    TOMBSTONE,
    Memtable,
)
from repro.kvstore.merge import MergeOperator, resolve_merge_operator
from repro.kvstore.sstable import SSTableReader, SSTableWriter
from repro.kvstore.wal import KIND_DELETE, KIND_MERGE, KIND_PUT, WriteAheadLog
from repro.obs.registry import REGISTRY, store_samples
from repro.obs.trace import current_tracer

_TABLE_PREFIX = struct.Struct(">H")
MANIFEST_NAME = "MANIFEST"
WAL_NAME = "wal.log"
_WAL_SEGMENT_RE = re.compile(r"^wal-(\d+)\.log$")


class StoreMetrics:
    """Operation counters exposed for tests, benchmarks and tuning.

    Counting is monotonic over the store's lifetime (not persisted) and
    thread-safe; ``bloom_skips`` counts SSTables that a point read skipped
    thanks to a negative bloom-filter probe, ``block_cache_hits``/``misses``
    mirror the shared SSTable block cache, and ``compaction_aborts`` counts
    compactions whose candidate output failed the pre-swap integrity check
    (reads then keep serving from the pre-compaction tables).

    ``multi_get_batches`` counts batched read calls (each also bumps
    ``gets`` once per key).  ``postings_cache_hits``/``misses`` and
    ``planner_reorders`` are bumped by the query layer
    (:class:`repro.core.engine.SequenceIndex`) onto its store's metrics so
    serving-path counters live in one snapshot.

    ``flush_bytes_written`` / ``compaction_bytes_rewritten`` account every
    data byte a flush persisted and every data byte a compaction merge
    re-persisted; their ratio is the store's write amplification, which is
    what the leveled-vs-size-tiered ablation measures.
    ``compaction_moves`` counts leveled trivial moves (promotions that
    re-levelled a table in the manifest without rewriting it).
    ``block_reads`` counts physical data-block loads and
    ``lazy_meta_loads`` counts lazily-opened SSTables that materialized
    their index/bloom metadata -- both stay at zero across a lazy reopen
    until the first read arrives.

    Counters are sharded per thread so :meth:`bump` never takes a lock --
    concurrent readers do not serialize on a shared metrics mutex.
    :meth:`snapshot` (and attribute reads like ``metrics.gets``) aggregate
    the shards; a shard outlives its thread, so no counts are ever dropped.

    **Snapshot consistency** (see ``docs/METRICS.md``): :meth:`snapshot`
    copies each shard *atomically* in a single pass (one C-level dict copy
    per shard under the GIL), so per-thread counter relationships are
    preserved -- if a thread always bumps counter A before counter B, no
    snapshot can ever show B ahead of A.  Counters bumped at different
    times by *different* threads carry no such guarantee (the shard copies
    are taken a few microseconds apart), and two attribute reads like
    ``metrics.gets``/``metrics.bloom_skips`` each take their own snapshot;
    use one :meth:`snapshot` call when related counters must be compared.
    """

    _COUNTERS = (
        "puts",
        "merges",
        "deletes",
        "gets",
        "scans",
        "flushes",
        "compactions",
        "compaction_aborts",
        "bloom_skips",
        "sstable_reads",
        "block_cache_hits",
        "block_cache_misses",
        "multi_get_batches",
        "compressed_blocks",
        "mmap_block_hits",
        "postings_cache_hits",
        "postings_cache_misses",
        "sequence_cache_hits",
        "sequence_cache_misses",
        "planner_reorders",
        "flush_bytes_written",
        "compaction_bytes_rewritten",
        "compaction_moves",
        "block_reads",
        "lazy_meta_loads",
    )

    def __init__(self) -> None:
        self._registry_lock = threading.Lock()  # guards _shards membership only
        self._local = threading.local()
        self._shards: list[dict[str, int]] = []

    def _shard(self) -> dict[str, int]:
        shard = getattr(self._local, "counters", None)
        if shard is None:
            shard = dict.fromkeys(self._COUNTERS, 0)
            with self._registry_lock:
                self._shards.append(shard)
            self._local.counters = shard
        return shard

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment one counter (lock-free: writes this thread's shard)."""
        self._shard()[name] += amount

    def snapshot(self) -> dict[str, int]:
        """Current counter values as a plain dict (sums all shards).

        Single-pass: every shard is captured once with an atomic dict copy
        (``dict(shard)`` runs entirely in C under the GIL), so a shard's
        counters are mutually consistent -- a writer's bump sequence can
        never be observed out of order within its own shard.  The previous
        counter-major aggregation re-read each shard once per counter,
        which could tear related counters (e.g. report more
        ``sstable_reads`` than ``gets``); the shard-major pass cannot.
        """
        with self._registry_lock:
            copies = [dict(shard) for shard in self._shards]
        totals = dict.fromkeys(self._COUNTERS, 0)
        for copy in copies:
            for name, value in copy.items():
                totals[name] += value
        return totals

    def __getattr__(self, name: str) -> int:
        # Keep `metrics.gets`-style reads working over the sharded layout.
        if name in type(self)._COUNTERS:
            return self.snapshot()[name]
        raise AttributeError(name)


class LSMStore(KeyValueStore):
    """File-backed LSM store; see the module docstring for the design."""

    def __init__(
        self,
        path: str,
        memtable_flush_bytes: int = 4 * 1024 * 1024,
        sync_wal: bool = False,
        compaction_min_tables: int = 4,
        auto_compact: bool = True,
        background_compaction: bool = False,
        block_cache_bytes: int = 8 * 1024 * 1024,
        compression: str | None = None,
        mmap: bool = False,
        io=None,
        compaction: str = "size_tiered",
        leveled: LeveledConfig | None = None,
        lazy_open: bool = True,
    ) -> None:
        self._path = path
        #: filesystem shim for durability-critical I/O; tests inject a
        #: :class:`repro.faults.FaultyIO` here, production uses ``REAL_IO``.
        self._io = io or REAL_IO
        self._memtable_flush_bytes = memtable_flush_bytes
        self._sync_wal = sync_wal
        self._compaction_min_tables = compaction_min_tables
        self._auto_compact = auto_compact
        # The strategy knob only affects how future compactions are
        # *planned*; both strategies read the same flat, shadow-ordered
        # table list, so a store written under one reopens (and keeps
        # compacting) under the other with no migration step.
        if compaction not in ("size_tiered", "leveled"):
            raise ValueError(f"unknown compaction strategy {compaction!r}")
        self._compaction = compaction
        if leveled is not None:
            self._leveled_config = leveled
        else:
            self._leveled_config = LeveledConfig(
                l0_compact_tables=max(2, compaction_min_tables)
            )
        #: lazy manifest-only open: readers defer index/bloom until first
        #: use, so reopen cost is O(manifest), not O(data).
        self._lazy_open = lazy_open
        # Fail fast on an unknown/unavailable codec (e.g. zstd without the
        # zstandard package) instead of erroring at first flush.  The knob
        # only affects *writes*: readers dispatch per file on the header
        # magic, so a store written with compression on reopens (and keeps
        # compacting) with compression off, and vice versa.
        blockcodec.resolve_compression(compression)
        self._compression = compression
        self._mmap = mmap
        self._state_lock = RWLock()
        self._flush_lock = threading.Lock()
        self._compaction_lock = threading.Lock()
        self._closed = False
        os.makedirs(path, exist_ok=True)

        self.metrics = StoreMetrics()
        self._block_cache = (
            BlockCache(block_cache_bytes, metrics=self.metrics)
            if block_cache_bytes > 0
            else None
        )
        #: test seam: called with the merged SSTable path after the output is
        #: sealed but before the manifest swap (fault injection of the
        #: compaction protocol's vulnerable window).
        self.compaction_pre_swap_hook: Callable[[str], None] | None = None
        self._tables: dict[str, int] = {}
        self._merge_ops: dict[int, MergeOperator | None] = {}
        self._merge_op_names: dict[str, str | None] = {}
        self._sstables: list[SSTableReader] = []  # oldest -> newest
        self._immutable: Memtable | None = None  # sealed, being flushed
        #: a sealed-but-unpersisted handoff left behind by a failed flush;
        #: retried (under ``_flush_lock``) before any new memtable is sealed.
        self._pending_flush: tuple[Memtable, int, int] | None = None
        self._next_table_id = 1
        self._next_sst_id = 1
        self._next_wal_id = 1
        self._last_flushed_seq = 0
        self._next_seq = 1

        self._load_manifest()
        self._memtable = Memtable()
        self._replay_wal()
        self._wal = WriteAheadLog(
            os.path.join(path, WAL_NAME), sync=sync_wal, io=self._io
        )
        self._compactor = BackgroundCompactor(self) if background_compaction else None
        #: identity used in metrics exposition labels
        self.obs_name = path
        self._obs_handle = REGISTRY.register(
            {"store": self.obs_name, "backend": "lsm"}, self._collect_obs_metrics
        )

    # -- manifest and recovery -------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self._path, MANIFEST_NAME)

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if not os.path.exists(path):
            self._write_manifest()
            return
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        self._next_table_id = manifest["next_table_id"]
        self._next_sst_id = manifest["next_sst_id"]
        self._last_flushed_seq = manifest["last_flushed_seq"]
        for name, spec in manifest["tables"].items():
            table_id = spec["id"]
            op_name = spec["merge"]
            self._tables[name] = table_id
            self._merge_op_names[name] = op_name
            self._merge_ops[table_id] = (
                resolve_merge_operator(op_name) if op_name else None
            )
        for entry in manifest["sstables"]:
            if isinstance(entry, str):  # manifest v1: plain filename, L0
                filename, level, min_key, max_key = entry, 0, None, None
            else:
                filename = entry["file"]
                level = int(entry.get("level", 0))
                min_key = (
                    bytes.fromhex(entry["min_key"]) if entry.get("min_key") else None
                )
                max_key = (
                    bytes.fromhex(entry["max_key"]) if entry.get("max_key") else None
                )
            reader = SSTableReader(
                os.path.join(self._path, filename),
                cache=self._block_cache,
                io=self._io,
                use_mmap=self._mmap,
                metrics=self.metrics,
                lazy=self._lazy_open,
            )
            reader.level = level
            reader.min_key = min_key
            reader.max_key = max_key
            self._sstables.append(reader)
        self._validate_levels()

    def _validate_levels(self) -> None:
        """Demote every table to L0 if the manifest's level layout is unsound.

        The flat manifest order is what reads trust (oldest shadow first),
        so interpreting *any* layout as all-L0 is always correct -- L0
        imposes nothing beyond that order.  Keeping deeper levels, however,
        lets the planner reorder tables within a level and skip shadow
        checks between disjoint runs, so levels survive a reload only when
        the invariants actually hold: flat order non-increasing in level
        (deepest first) and every L1+ level a key-disjoint run with known
        bounds.  A size-tiered store's manifest (all L0) passes trivially;
        a manifest scrambled by a size-tiered round over a formerly
        leveled store demotes cleanly and the leveled planner rebuilds
        the levels from scratch.
        """
        sound = True
        prev: int | None = None
        for reader in self._sstables:
            if reader.level < 0 or (prev is not None and reader.level > prev):
                sound = False
                break
            prev = reader.level
        if sound:
            by_level: dict[int, list[SSTableReader]] = {}
            for reader in self._sstables:
                if reader.level >= 1:
                    if (
                        reader.min_key is None
                        or reader.max_key is None
                        or reader.min_key > reader.max_key
                    ):
                        sound = False
                        break
                    by_level.setdefault(reader.level, []).append(reader)
            if sound:
                for tables in by_level.values():
                    tables.sort(key=lambda r: r.min_key)
                    if any(
                        a.max_key >= b.min_key
                        for a, b in zip(tables, tables[1:])
                    ):
                        sound = False
                        break
        if not sound:
            for reader in self._sstables:
                reader.level = 0  # key bounds stay: they are still true

    def _write_manifest(self) -> None:
        manifest = {
            "version": 2,
            "compaction": self._compaction,
            "next_table_id": self._next_table_id,
            "next_sst_id": self._next_sst_id,
            "last_flushed_seq": self._last_flushed_seq,
            "tables": {
                name: {"id": table_id, "merge": self._merge_op_names.get(name)}
                for name, table_id in self._tables.items()
            },
            "sstables": [
                {
                    "file": os.path.basename(r.path),
                    "level": r.level,
                    "min_key": r.min_key.hex() if r.min_key is not None else None,
                    "max_key": r.max_key.hex() if r.max_key is not None else None,
                    "records": r.record_count,
                    "data_bytes": r.data_bytes,
                }
                for r in self._sstables
            ],
        }
        tmp = self._manifest_path() + ".tmp"
        fh = self._io.open(tmp, "wb")
        try:
            fh.write(json.dumps(manifest).encode("utf-8"))
            fh.flush()
            self._io.fsync(fh)
        finally:
            fh.close()
        self._io.replace(tmp, self._manifest_path())

    def _wal_segments(self) -> list[tuple[int, str]]:
        """Frozen WAL segments as ``(id, path)``, oldest first."""
        segments = []
        for name in os.listdir(self._path):
            match = _WAL_SEGMENT_RE.match(name)
            if match:
                segments.append((int(match.group(1)), os.path.join(self._path, name)))
        segments.sort()
        return segments

    def _replay_wal(self) -> None:
        max_seq = self._last_flushed_seq
        records = []
        for segment_id, segment_path in self._wal_segments():
            self._next_wal_id = max(self._next_wal_id, segment_id + 1)
            records.extend(WriteAheadLog.replay(segment_path))
        records.extend(WriteAheadLog.replay(os.path.join(self._path, WAL_NAME)))
        records.sort(key=lambda record: record.seqno)
        for record in records:
            if record.seqno > self._last_flushed_seq:
                self._memtable.apply(record.kind, record.key, record.value)
            max_seq = max(max_seq, record.seqno)
        self._next_seq = max_seq + 1

    def _remove_wal_segments(self, upto_id: int) -> None:
        for segment_id, segment_path in self._wal_segments():
            if segment_id <= upto_id:
                self._io.remove(segment_path)

    # -- table management -------------------------------------------------------

    def create_table(self, name: str, merge_operator: str | None = None) -> None:
        with self._state_lock.write():
            self._check_open()
            if name in self._tables:
                if self._merge_op_names.get(name) != merge_operator:
                    raise ValueError(
                        f"table {name!r} already exists with merge operator "
                        f"{self._merge_op_names.get(name)!r}, not {merge_operator!r}"
                    )
                return
            table_id = self._next_table_id
            self._next_table_id += 1
            self._tables[name] = table_id
            self._merge_op_names[name] = merge_operator
            self._merge_ops[table_id] = (
                resolve_merge_operator(merge_operator) if merge_operator else None
            )
            self._write_manifest()

    def has_table(self, name: str) -> bool:
        with self._state_lock.read():
            self._check_open()
            return name in self._tables

    def list_tables(self) -> list[str]:
        with self._state_lock.read():
            self._check_open()
            return sorted(self._tables)

    def _table_id(self, name: str) -> int:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"table {name!r} does not exist") from None

    def _full_key(self, table: str, key: KeyPart | Key) -> bytes:
        return _TABLE_PREFIX.pack(self._table_id(table)) + encode_key(normalize_key(key))

    def _operator_for_full_key(self, full_key: bytes) -> MergeOperator | None:
        (table_id,) = _TABLE_PREFIX.unpack_from(full_key, 0)
        return self._merge_ops.get(table_id)

    # -- write path ---------------------------------------------------------------

    def _log_and_apply(self, kind: int, table: str, key: KeyPart | Key, value: bytes) -> None:
        with self._state_lock.write():
            self._check_open()
            full_key = self._full_key(table, key)
            if kind == KIND_MERGE and self._operator_for_full_key(full_key) is None:
                raise MergeUnsupportedError(f"table {table!r} has no merge operator")
            seqno = self._next_seq
            self._next_seq += 1
            self._wal.append(seqno, kind, full_key, value)
            self._memtable.apply(kind, full_key, value)
            need_flush = (
                self._memtable.approximate_bytes >= self._memtable_flush_bytes
            )
        if need_flush:
            self._flush_if_over_threshold()

    def put(self, table: str, key: KeyPart | Key, value: Any) -> None:
        self.metrics.bump("puts")
        self._log_and_apply(KIND_PUT, table, key, encode_value(value))

    def merge(self, table: str, key: KeyPart | Key, delta: Any) -> None:
        self.metrics.bump("merges")
        self._log_and_apply(KIND_MERGE, table, key, encode_value(delta))

    def delete(self, table: str, key: KeyPart | Key) -> None:
        self.metrics.bump("deletes")
        self._log_and_apply(KIND_DELETE, table, key, b"")

    # -- read path -----------------------------------------------------------------

    def get(self, table: str, key: KeyPart | Key, default: Any = None) -> Any:
        self.metrics.bump("gets")
        with self._state_lock.read():
            self._check_open()
            full_key = self._full_key(table, key)
            operator = self._operator_for_full_key(full_key)
            pending: list[Any] = []  # merge deltas, newest first
            for memtable in (self._memtable, self._immutable):
                if memtable is None:
                    continue
                entry = memtable.lookup(full_key)
                if entry is None:
                    continue
                pending.extend(decode_value(d) for d in reversed(entry.deltas))
                if entry.base_kind == BASE_PUT:
                    base = (
                        decode_value(entry.base_value)
                        if entry.base_value is not None
                        else None
                    )
                    if not pending:
                        return base
                    return _require_op(operator).full_merge(
                        base, list(reversed(pending))
                    )
                if entry.base_kind == BASE_DELETE:
                    if not pending:
                        return default
                    return _require_op(operator).full_merge(
                        None, list(reversed(pending))
                    )
            for reader in reversed(self._sstables):
                if not reader.may_contain(full_key):
                    self.metrics.bump("bloom_skips")
                    continue
                self.metrics.bump("sstable_reads")
                record = reader.get(full_key)
                if record is None:
                    continue
                kind, raw = record
                if kind == KIND_MERGE:
                    pending.append(decode_value(raw))
                    continue
                base = decode_value(raw) if kind == KIND_PUT else None
                if not pending:
                    return base if kind == KIND_PUT else default
                return _require_op(operator).full_merge(base, list(reversed(pending)))
            if not pending:
                return default
            return _require_op(operator).full_merge(None, list(reversed(pending)))

    def multi_get(
        self,
        table: str,
        keys: Iterable[KeyPart | Key],
        default: Any = None,
    ) -> list[Any]:
        """Batched point reads against one consistent snapshot.

        The read lock is taken once for the whole batch; each memtable and
        SSTable is then probed in a single pass over the (deduplicated,
        sorted) key set, sharing bloom probes and block loads between
        neighbouring keys.  Merge-operator resolution, tombstones and the
        ``default`` are handled exactly as in :meth:`get`.
        """
        key_list = list(keys)
        self.metrics.bump("multi_get_batches")
        self.metrics.bump("gets", len(key_list))
        span = current_tracer().span("lsm.multi_get")
        bloom_skipped = sstable_probes = memtable_resolved = 0
        with span, self._state_lock.read():
            self._check_open()
            operator = self._merge_ops.get(self._table_id(table))
            full_by_norm: dict[Key, bytes] = {}
            norm_keys = []
            for key in key_list:
                norm = normalize_key(key)
                norm_keys.append(norm)
                if norm not in full_by_norm:
                    full_by_norm[norm] = self._full_key(table, norm)
            # Per unique key: accumulated merge deltas (newest first) until a
            # base record resolves it, mirroring get()'s layered resolution.
            pending: dict[bytes, list[Any]] = {fk: [] for fk in full_by_norm.values()}
            resolved: dict[bytes, Any] = {}
            unresolved = set(pending)
            for memtable in (self._memtable, self._immutable):
                if memtable is None or not unresolved:
                    continue
                for full_key in list(unresolved):
                    entry = memtable.lookup(full_key)
                    if entry is None:
                        continue
                    deltas = pending[full_key]
                    deltas.extend(decode_value(d) for d in reversed(entry.deltas))
                    if entry.base_kind == BASE_PUT:
                        base = (
                            decode_value(entry.base_value)
                            if entry.base_value is not None
                            else None
                        )
                        resolved[full_key] = (
                            base
                            if not deltas
                            else _require_op(operator).full_merge(
                                base, list(reversed(deltas))
                            )
                        )
                        unresolved.discard(full_key)
                    elif entry.base_kind == BASE_DELETE:
                        resolved[full_key] = (
                            default
                            if not deltas
                            else _require_op(operator).full_merge(
                                None, list(reversed(deltas))
                            )
                        )
                        unresolved.discard(full_key)
            memtable_resolved = len(resolved)
            for reader in reversed(self._sstables):
                if not unresolved:
                    break
                candidates = []
                for full_key in unresolved:
                    if reader.may_contain(full_key):
                        candidates.append(full_key)
                    else:
                        self.metrics.bump("bloom_skips")
                        bloom_skipped += 1
                if not candidates:
                    continue
                candidates.sort()
                self.metrics.bump("sstable_reads", len(candidates))
                sstable_probes += len(candidates)
                records = reader.get_many(candidates)
                for full_key in candidates:
                    record = records.get(full_key)
                    if record is None:
                        continue
                    kind, raw = record
                    deltas = pending[full_key]
                    if kind == KIND_MERGE:
                        deltas.append(decode_value(raw))
                        continue
                    base = decode_value(raw) if kind == KIND_PUT else None
                    if not deltas:
                        resolved[full_key] = base if kind == KIND_PUT else default
                    else:
                        resolved[full_key] = _require_op(operator).full_merge(
                            base, list(reversed(deltas))
                        )
                    unresolved.discard(full_key)
            for full_key in unresolved:
                deltas = pending[full_key]
                resolved[full_key] = (
                    default
                    if not deltas
                    else _require_op(operator).full_merge(
                        None, list(reversed(deltas))
                    )
                )
            if span.enabled:
                span.add("keys", len(key_list))
                span.add("unique_keys", len(full_by_norm))
                span.add("memtable_resolved", memtable_resolved)
                span.add("bloom_skips", bloom_skipped)
                span.add("sstable_reads", sstable_probes)
        return [resolved[full_by_norm[norm]] for norm in norm_keys]

    def scan(
        self, table: str, prefix: KeyPart | Key | None = None
    ) -> Iterator[tuple[Key, Any]]:
        # Materialize under the read lock: scans are used for bounded key
        # ranges (per-table or per-prefix), and a snapshot keeps iteration
        # safe against concurrent flushes/compactions.
        self.metrics.bump("scans")
        with self._state_lock.read():
            self._check_open()
            table_id = self._table_id(table)
            low = _TABLE_PREFIX.pack(table_id)
            if prefix is not None:
                low += encode_key(normalize_key(prefix))
            high = _prefix_successor(low)
            operator = self._merge_ops.get(table_id)
            results = list(self._scan_snapshot(low, high, operator))
        return iter(results)

    def scan_range(
        self,
        table: str,
        start: KeyPart | Key | None = None,
        stop: KeyPart | Key | None = None,
    ) -> Iterator[tuple[Key, Any]]:
        self.metrics.bump("scans")
        with self._state_lock.read():
            self._check_open()
            table_id = self._table_id(table)
            table_prefix = _TABLE_PREFIX.pack(table_id)
            low = table_prefix
            if start is not None:
                low += encode_key(normalize_key(start))
            if stop is not None:
                high: bytes | None = table_prefix + encode_key(normalize_key(stop))
            else:
                high = _prefix_successor(table_prefix)
            operator = self._merge_ops.get(table_id)
            results = list(self._scan_snapshot(low, high, operator))
        return iter(results)

    def _scan_snapshot(
        self, low: bytes, high: bytes | None, operator: MergeOperator | None
    ) -> Iterator[tuple[Key, Any]]:
        """Merge-scan all sources; caller holds (at least) the read lock."""
        sources: list[Iterator[tuple[bytes, int, bytes]]] = []
        for memtable in (self._memtable, self._immutable):
            if memtable is None:
                continue
            mem_records = [
                (key, entry)
                for key, entry in memtable.iter_sorted()
                if key >= low
            ]
            sources.append(_memtable_source(mem_records))
        for reader in reversed(self._sstables):
            sources.append(reader.iter_from_key(low))
        heap: list[tuple[bytes, int, int, bytes, Iterator[tuple[bytes, int, bytes]]]] = []
        for rank, source in enumerate(sources):
            first = next(source, None)
            if first is not None:
                key, kind, value = first
                heapq.heappush(heap, (key, rank, kind, value, source))
        while heap:
            key = heap[0][0]
            if high is not None and key >= high:
                break
            records: list[tuple[int, bytes]] = []
            while heap and heap[0][0] == key:
                _, rank, kind, value, source = heapq.heappop(heap)
                records.append((kind, value))
                nxt = next(source, None)
                if nxt is not None:
                    nkey, nkind, nvalue = nxt
                    heapq.heappush(heap, (nkey, rank, nkind, nvalue, source))
            value_obj = _resolve_read(records, operator)
            if value_obj is not TOMBSTONE:
                yield decode_key(key[_TABLE_PREFIX.size :]), value_obj

    # -- flush & compaction -----------------------------------------------------------

    def flush(self) -> None:
        """Persist the memtable; synchronous, but reads proceed throughout."""
        flushed = False
        with self._flush_lock:
            with self._state_lock.write():
                self._check_open()
            flushed = self._drain_pending_flush()
            with self._state_lock.write():
                handoff = self._seal_memtable_locked()
            if handoff is not None:
                self._flush_sealed(*handoff)
                flushed = True
        if flushed:
            self._after_flush()

    def _flush_if_over_threshold(self) -> None:
        """Auto-flush entry point; re-checks the threshold under the lock."""
        flushed = False
        with self._flush_lock:
            with self._state_lock.write():
                skip = (
                    self._closed
                    or self._memtable.approximate_bytes < self._memtable_flush_bytes
                )
            if not skip:
                # _closed cannot flip while we hold _flush_lock (close()
                # acquires it before setting the flag), so the re-check
                # above stays valid across the drain + seal below.
                flushed = self._drain_pending_flush()
                with self._state_lock.write():
                    handoff = self._seal_memtable_locked()
                if handoff is not None:
                    self._flush_sealed(*handoff)
                    flushed = True
        if flushed:
            self._after_flush()

    def _drain_pending_flush(self) -> bool:
        """Retry a flush whose SSTable build failed; caller holds _flush_lock.

        Until the retry succeeds the sealed memtable stays readable via
        ``_immutable`` and its frozen WAL segment stays on disk, so a failed
        flush never loses acknowledged writes: they remain visible to reads
        and recoverable by WAL replay.  Returns ``True`` once the pending
        memtable is persisted; re-raises if the rebuild fails again.
        """
        pending = self._pending_flush
        if pending is None:
            return False
        self._flush_sealed(*pending)
        return True

    def _seal_memtable_locked(self) -> tuple[Memtable, int, int] | None:
        """Swap in a fresh memtable + WAL; caller holds write and flush locks.

        Returns ``(sealed_memtable, frozen_wal_id, flushed_upto_seq)`` or
        ``None`` when there is nothing to flush.  The single-immutable
        invariant holds because ``_flush_lock`` spans seal -> install and
        every flush path drains ``_pending_flush`` before sealing anew.
        """
        if len(self._memtable) == 0:
            return None
        if self._immutable is not None or self._pending_flush is not None:
            # A previously sealed memtable has not been persisted yet;
            # overwriting it here would silently drop acknowledged writes
            # (and a later flush would delete their WAL segment).
            raise RuntimeError(
                "unflushed sealed memtable pending; drain it before sealing"
            )
        sealed = self._memtable
        sealed.seal()
        upto = self._next_seq - 1
        frozen_id = self._next_wal_id
        self._next_wal_id += 1
        self._wal.close()
        active = os.path.join(self._path, WAL_NAME)
        self._io.replace(
            active, os.path.join(self._path, f"wal-{frozen_id:06d}.log")
        )
        self._wal = WriteAheadLog(active, sync=self._sync_wal, io=self._io)
        self._immutable = sealed
        self._memtable = Memtable()
        handoff = (sealed, frozen_id, upto)
        self._pending_flush = handoff
        return handoff

    def _flush_sealed(self, sealed: Memtable, frozen_id: int, upto: int) -> None:
        """Build the SSTable lock-free, then install it atomically."""
        with self._state_lock.write():
            filename = f"sst-{self._next_sst_id:06d}.sst"
            self._next_sst_id += 1
        writer = SSTableWriter(
            os.path.join(self._path, filename),
            expected_records=len(sealed),
            io=self._io,
            compression=self._compression,
        )
        span = current_tracer().span("lsm.flush")
        try:
            with span:
                for key, entry in sealed.iter_sorted():
                    record = _flush_entry(entry, self._operator_for_full_key(key))
                    if record is not None:
                        kind, value = record
                        writer.add(key, kind, value)
                reader = writer.finish(
                    cache=self._block_cache, use_mmap=self._mmap, metrics=self.metrics
                )
                reader.min_key = writer.first_key
                reader.max_key = writer.last_key
                if writer.compressed_blocks:
                    self.metrics.bump("compressed_blocks", writer.compressed_blocks)
                if span.enabled:
                    span.add("entries", len(sealed))
                    span.add("bytes", reader.data_bytes)
        except BaseException:
            writer.abort()
            raise
        with self._state_lock.write():
            self._sstables.append(reader)
            self._last_flushed_seq = upto
            self._immutable = None
            self._pending_flush = None
            self._write_manifest()
        self.metrics.bump("flushes")
        self.metrics.bump("flush_bytes_written", reader.data_bytes)
        # Every frozen segment up to ours holds only records <= upto; flushes
        # complete in seal order (a pending handoff is drained before a new
        # seal), so no segment is deleted before its memtable is persisted.
        self._remove_wal_segments(frozen_id)

    def _after_flush(self) -> None:
        if not self._auto_compact:
            return
        if self._compactor is not None:
            self._compactor.trigger()
        elif self._compaction == "leveled":
            # A promotion can overflow the next level: drain the cascade
            # inline so the hard invariants hold when the flush returns.
            while self._compaction_round():
                pass
        else:
            self._compaction_round()

    def compact(self) -> bool:
        """Run one compaction round if a qualifying run exists."""
        self._check_open()
        return self._compaction_round()

    def compact_all(self) -> None:
        """Force-merge every SSTable into one run (full major compaction).

        Under size-tiered the result is a single table; under leveled it is
        a single key-disjoint run at the deepest populated level (split at
        the configured output size), which is the same full-finalize merge.
        """
        self._check_open()
        self.flush()
        with self._compaction_lock:
            with self._state_lock.read():
                inputs = list(self._sstables)
            if self._compaction == "leveled":
                depth = max((r.level for r in inputs), default=0)
                if len(inputs) > 1 or (inputs and depth == 0):
                    self._merge_into_level(inputs, max(1, depth), finalize=True)
            elif len(inputs) > 1:
                self._compact_slice(0, len(inputs))

    def _compaction_round(self, soft: bool = False) -> bool:
        if self._compaction == "leveled":
            return self._leveled_round(soft)
        with self._compaction_lock:
            with self._state_lock.read():
                if self._closed:
                    return False
                sizes = [reader.data_bytes for reader in self._sstables]
            plan = plan_size_tiered(sizes, min_tables=self._compaction_min_tables)
            if plan is None:
                return False
            return self._compact_slice(plan.start, plan.stop)

    def _compact_slice(self, start: int, stop: int) -> bool:
        """Merge ``_sstables[start:stop]`` into one table; atomic swap.

        Caller holds ``_compaction_lock``; concurrent flushes only *append*
        to the SSTable list, so the slice indices stay valid throughout.
        The merged candidate is CRC-verified before the swap: a corrupt
        output (crash/fault between compaction write and manifest update)
        is discarded and reads continue from the pre-compaction tables.
        """
        with self._state_lock.read():
            run = list(self._sstables[start:stop])
        # Scrub the inputs first: merging unverified bytes would stamp a
        # *fresh* CRC over corrupt data, laundering a detectable bit flip
        # into a permanently undetectable one.  A corrupt input aborts the
        # round; reads keep serving (and verify() keeps failing loudly).
        for reader in run:
            try:
                reader.verify()
            except CorruptionError:
                self.metrics.bump("compaction_aborts")
                return False
        finalize = start == 0
        with self._state_lock.write():
            filename = f"sst-{self._next_sst_id:06d}.sst"
            self._next_sst_id += 1
        writer = SSTableWriter(
            os.path.join(self._path, filename),
            expected_records=sum(r.record_count for r in run),
            io=self._io,
            compression=self._compression,
        )
        span = current_tracer().span("lsm.compaction")
        try:
            with span:
                for kind, key, value in merge_records(
                    run, self._operator_for_full_key, finalize
                ):
                    writer.add(key, kind, value)
                merged = writer.finish(
                    cache=self._block_cache, use_mmap=self._mmap, metrics=self.metrics
                )
                merged.min_key = writer.first_key
                merged.max_key = writer.last_key
                if writer.compressed_blocks:
                    self.metrics.bump("compressed_blocks", writer.compressed_blocks)
                if span.enabled:
                    span.add("inputs", len(run))
                    span.add("input_bytes", sum(r.data_bytes for r in run))
                    span.add("output_bytes", merged.data_bytes)
        except BaseException:
            writer.abort()
            raise
        try:
            # Named fault point for the compaction protocol's vulnerable
            # window (output sealed, manifest not yet swapped); a scheduled
            # ``point:compaction.pre_swap`` fault fires here.
            self._io.fault_point("compaction.pre_swap", merged.path)
            if self.compaction_pre_swap_hook is not None:
                # Legacy test seam, kept for older fault-injection tests;
                # new code should schedule the fault point above instead.
                self.compaction_pre_swap_hook(merged.path)
        except BaseException:
            # Simulated kill between output and swap: leave the orphan
            # file on disk exactly as a real crash would.
            merged.close()
            raise
        try:
            merged.verify()
        except Exception:
            merged.close()
            os.remove(merged.path)
            self.metrics.bump("compaction_aborts")
            return False
        with self._state_lock.write():
            if self._closed or self._sstables[start:stop] != run:
                # Store closed (or set changed) under us: discard the output.
                merged.close()
                os.remove(merged.path)
                self.metrics.bump("compaction_aborts")
                return False
            self._sstables[start:stop] = [merged]
            self._write_manifest()
        self.metrics.bump("compactions")
        self.metrics.bump("compaction_bytes_rewritten", merged.data_bytes)
        self._retire(run)
        return True

    # -- leveled compaction ------------------------------------------------------------

    def _levels_snapshot_locked(self) -> list[list[SSTableReader]]:
        """Group the flat list by level; caller holds (at least) the read lock.

        ``levels[0]`` keeps flat-list order (oldest -> newest); deeper
        levels sort by ``min_key`` so the planner sees each run in key
        order regardless of how the flat list interleaved them.
        """
        depth = max((r.level for r in self._sstables), default=0)
        levels: list[list[SSTableReader]] = [[] for _ in range(depth + 1)]
        for reader in self._sstables:
            levels[reader.level].append(reader)
        for n in range(1, len(levels)):
            levels[n].sort(key=lambda r: r.min_key or b"")
        return levels

    def _rebuild_flat_locked(self) -> None:
        """Re-derive the flat read order from per-table levels.

        Deepest level first (oldest shadow), then L0 in its existing
        relative order (recency).  Within an L1+ level tables are
        key-disjoint, so sorting them by ``min_key`` cannot change which
        record shadows which.  Caller holds the write lock.
        """
        l0 = [r for r in self._sstables if r.level == 0]
        deeper = [r for r in self._sstables if r.level > 0]
        deeper.sort(key=lambda r: (-r.level, r.min_key or b""))
        self._sstables = deeper + l0

    def _leveled_round(self, soft: bool = False) -> bool:
        """Plan and apply one leveled promotion; ``True`` if work was done."""
        with self._compaction_lock:
            with self._state_lock.read():
                if self._closed:
                    return False
                levels = self._levels_snapshot_locked()
            plan = plan_leveled(levels, self._leveled_config, soft=soft)
            if plan is None:
                return False
            if plan.is_trivial_move:
                return self._apply_trivial_move(plan)
            finalize = all(
                not levels[n] for n in range(plan.target_level + 1, len(levels))
            )
            inputs = list(plan.targets) + list(plan.sources)
            grandparents = (
                levels[plan.target_level + 1]
                if plan.target_level + 1 < len(levels)
                else []
            )
            return self._merge_into_level(
                inputs, plan.target_level, finalize, grandparents=grandparents
            )

    def _apply_trivial_move(self, plan: LeveledPlan) -> bool:
        """Promote a victim that overlaps nothing below it: manifest-only.

        No bytes are rewritten -- the table changes its level label and
        the manifest is re-persisted.  Safe against races: we hold
        ``_compaction_lock`` (no concurrent compaction can repopulate the
        target level) and concurrent flushes only ever append to L0.
        """
        source = plan.sources[0]
        with self._state_lock.write():
            if self._closed or source not in self._sstables:
                return False
            source.level = plan.target_level
            self._rebuild_flat_locked()
            self._write_manifest()
        self.metrics.bump("compaction_moves")
        return True

    def _merge_into_level(
        self,
        inputs_oldest_first: list[SSTableReader],
        target_level: int,
        finalize: bool,
        grandparents: list[SSTableReader] | None = None,
    ) -> bool:
        """Merge ``inputs`` into key-disjoint tables at ``target_level``.

        The leveled counterpart of :meth:`_compact_slice`, with the same
        protocol and the same anti-laundering property: scrub every input
        first, write the candidate outputs (split at the configured
        output size), pass each through the ``compaction.pre_swap`` fault
        point, CRC-verify them, then swap tables + manifest atomically
        under the write lock.  Caller holds ``_compaction_lock``.

        ``grandparents`` are the tables one level below ``target_level``:
        outputs are additionally cut once they have crossed more than
        ``grandparent_limit_factor * max_output_bytes`` of them, so no
        output's key range bridges a cold gap in the deeper run (which
        would drag that deeper data into every future promotion).
        """
        for reader in inputs_oldest_first:
            try:
                reader.verify()
            except CorruptionError:
                self.metrics.bump("compaction_aborts")
                return False
        split_bytes = self._leveled_config.max_output_bytes
        gp_limit = split_bytes * self._leveled_config.grandparent_limit_factor
        gp_run = sorted(
            (t for t in grandparents or [] if t.max_key is not None),
            key=lambda t: t.max_key,
        )
        gp_index = 0
        gp_crossed = 0
        expected = max(
            1,
            sum(r.record_count for r in inputs_oldest_first)
            // max(1, len(inputs_oldest_first)),
        )
        outputs: list[SSTableReader] = []
        writer: SSTableWriter | None = None
        span = current_tracer().span("lsm.compaction")
        try:
            with span:
                for kind, key, value in merge_records(
                    inputs_oldest_first, self._operator_for_full_key, finalize
                ):
                    while gp_index < len(gp_run) and gp_run[gp_index].max_key < key:
                        gp_crossed += gp_run[gp_index].data_bytes
                        gp_index += 1
                    if (
                        writer is not None
                        and writer.raw_data_bytes > 0
                        and gp_crossed > gp_limit
                    ):
                        outputs.append(self._finish_output(writer, target_level))
                        writer = None
                    if writer is None:
                        with self._state_lock.write():
                            filename = f"sst-{self._next_sst_id:06d}.sst"
                            self._next_sst_id += 1
                        writer = SSTableWriter(
                            os.path.join(self._path, filename),
                            expected_records=expected,
                            io=self._io,
                            compression=self._compression,
                        )
                        gp_crossed = 0
                    writer.add(key, kind, value)
                    if writer.raw_data_bytes >= split_bytes:
                        outputs.append(self._finish_output(writer, target_level))
                        writer = None
                if writer is not None:
                    outputs.append(self._finish_output(writer, target_level))
                    writer = None
                if span.enabled:
                    span.add("inputs", len(inputs_oldest_first))
                    span.add(
                        "input_bytes",
                        sum(r.data_bytes for r in inputs_oldest_first),
                    )
                    span.add("outputs", len(outputs))
                    span.add("output_bytes", sum(r.data_bytes for r in outputs))
                    span.add("target_level", target_level)
        except BaseException:
            # Simulated kill mid-merge: in-flight tmp file is dropped,
            # finished outputs stay as orphans exactly as a crash leaves
            # them (the manifest never references an orphan).
            if writer is not None:
                writer.abort()
            for merged in outputs:
                merged.close()
            raise
        try:
            for merged in outputs:
                # Named fault point for the vulnerable window (outputs
                # sealed, manifest not yet swapped), one per output.
                self._io.fault_point("compaction.pre_swap", merged.path)
                if self.compaction_pre_swap_hook is not None:
                    self.compaction_pre_swap_hook(merged.path)
        except BaseException:
            for merged in outputs:
                merged.close()
            raise
        try:
            for merged in outputs:
                merged.verify()
        except Exception:
            for merged in outputs:
                merged.close()
                os.remove(merged.path)
            self.metrics.bump("compaction_aborts")
            return False
        with self._state_lock.write():
            if self._closed or any(
                r not in self._sstables for r in inputs_oldest_first
            ):
                # Store closed (or inputs retired) under us: discard.
                for merged in outputs:
                    merged.close()
                    os.remove(merged.path)
                self.metrics.bump("compaction_aborts")
                return False
            survivors = [r for r in self._sstables if r not in inputs_oldest_first]
            self._sstables = survivors + outputs
            self._rebuild_flat_locked()
            self._write_manifest()
        self.metrics.bump("compactions")
        self.metrics.bump(
            "compaction_bytes_rewritten", sum(r.data_bytes for r in outputs)
        )
        self._retire(inputs_oldest_first)
        return True

    def _retire(self, readers: list[SSTableReader]) -> None:
        """Close and delete merged-away tables; one cache sweep for all."""
        if self._block_cache is not None:
            self._block_cache.evict_owners(r._uid for r in readers)
        for reader in readers:
            reader.close(evict_blocks=False)
            self._io.remove(reader.path)

    def _finish_output(self, writer: SSTableWriter, level: int) -> SSTableReader:
        """Seal one compaction output and annotate its placement."""
        first, last = writer.first_key, writer.last_key
        merged = writer.finish(
            cache=self._block_cache, use_mmap=self._mmap, metrics=self.metrics
        )
        if writer.compressed_blocks:
            self.metrics.bump("compressed_blocks", writer.compressed_blocks)
        merged.level = level
        merged.min_key = first
        merged.max_key = last
        return merged

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Flush and release resources; idempotent and safe mid-fault.

        The final flush is attempted once.  If it fails (ENOSPC, a failed
        fsync, an injected fault), the store is *still* marked closed and
        every file handle is released before the flush error propagates:
        acknowledged writes stay recoverable from the frozen WAL segments
        on the next open, and nothing leaks.  A second ``close()`` -- after
        success, after a failure, or concurrently -- is a quiet no-op.
        """
        with self._state_lock.write():
            if self._closed:
                return
        REGISTRY.unregister(self._obs_handle)
        compactor, self._compactor = self._compactor, None
        if compactor is not None:
            compactor.stop()
        flush_error: BaseException | None = None
        try:
            self.flush()
        except StoreClosedError:  # raced with another close()
            return
        except BaseException as exc:
            flush_error = exc
        close_error: BaseException | None = None
        with self._compaction_lock, self._flush_lock:
            with self._state_lock.write():
                if self._closed:
                    if flush_error is not None:
                        raise flush_error
                    return
                self._closed = True
                for handle in (self._wal, *self._sstables):
                    try:
                        handle.close()
                    except BaseException as exc:
                        if close_error is None:
                            close_error = exc
        if flush_error is not None:
            raise flush_error
        if close_error is not None:
            raise close_error

    @property
    def sstable_count(self) -> int:
        """Number of live SSTables (exposed for tests and introspection)."""
        with self._state_lock.read():
            return len(self._sstables)

    def level_stats(self) -> list[dict[str, int]]:
        """Per-level table count and data bytes, L0 first.

        Size-tiered stores report everything at L0; the leveled strategy
        populates deeper levels as promotions run.
        """
        with self._state_lock.read():
            self._check_open()
            depth = max((r.level for r in self._sstables), default=0)
            stats = [
                {"level": n, "tables": 0, "data_bytes": 0}
                for n in range(depth + 1)
            ]
            for reader in self._sstables:
                stats[reader.level]["tables"] += 1
                stats[reader.level]["data_bytes"] += reader.data_bytes
            return stats

    def verify(self) -> None:
        """Scrub every SSTable's data section against its checksum.

        Raises :class:`~repro.kvstore.api.CorruptionError` on the first
        mismatch.  Metadata (index/bloom/footer) is already verified on
        open; this pass covers the record payloads.  Holds the read lock,
        so a concurrent compaction cannot retire tables mid-scrub.
        """
        with self._state_lock.read():
            self._check_open()
            for reader in self._sstables:
                reader.verify()

    def cache_stats(self) -> dict[str, int]:
        """Block-cache counters (empty dict when the cache is disabled)."""
        return self._block_cache.stats() if self._block_cache is not None else {}

    def storage_stats(self) -> dict:
        """Physical storage accounting, per SSTable and aggregated.

        ``raw_data_bytes`` is the pre-compression data size (equal to
        ``data_bytes`` for uncompressed v1 files), so
        ``compression_ratio`` = raw / on-disk measures what the block
        codec actually saved.  Runs under the read lock so a concurrent
        compaction cannot retire tables mid-walk.
        """
        with self._state_lock.read():
            self._check_open()
            per_sstable = []
            for reader in self._sstables:
                try:
                    file_bytes = os.path.getsize(reader.path)
                except OSError:  # pragma: no cover - racing deletion
                    file_bytes = reader.data_bytes
                per_sstable.append(
                    {
                        "file": os.path.basename(reader.path),
                        "format_version": reader.format_version,
                        "level": reader.level,
                        "records": reader.record_count,
                        "data_bytes": reader.data_bytes,
                        "raw_data_bytes": reader.raw_data_bytes,
                        "file_bytes": file_bytes,
                        "mmap": reader.mmap_active,
                    }
                )
        data_bytes = sum(entry["data_bytes"] for entry in per_sstable)
        raw_bytes = sum(entry["raw_data_bytes"] for entry in per_sstable)
        return {
            "sstables": per_sstable,
            "records": sum(entry["records"] for entry in per_sstable),
            "data_bytes": data_bytes,
            "raw_data_bytes": raw_bytes,
            "file_bytes": sum(entry["file_bytes"] for entry in per_sstable),
            "compression_ratio": (raw_bytes / data_bytes) if data_bytes else 1.0,
            "compression": self._compression,
            "compaction": self._compaction,
            "level_count": len({entry["level"] for entry in per_sstable}),
            "mmap": self._mmap,
        }

    def _collect_obs_metrics(self) -> dict[str, float]:
        """Metrics-registry collector: one consistent store sample."""
        with self._state_lock.read():
            if self._closed:
                return {}
            sstables = len(self._sstables)
            tables = len(self._tables)
            level_count = len({reader.level for reader in self._sstables})
            bytes_on_disk = 0
            for reader in self._sstables:
                try:
                    bytes_on_disk += os.path.getsize(reader.path)
                except OSError:  # pragma: no cover - racing deletion
                    bytes_on_disk += reader.data_bytes
        return store_samples(
            self.metrics.snapshot(),
            sstables=sstables,
            tables=tables,
            cache_stats=self.cache_stats(),
            bytes_on_disk=bytes_on_disk,
            level_count=level_count,
        )

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")


def _prefix_successor(prefix: bytes) -> bytes | None:
    """Smallest byte string greater than every string starting with ``prefix``.

    Increment the last non-0xFF byte and truncate; all-0xFF prefixes have
    no successor (``None`` = scan to the end).
    """
    out = bytearray(prefix)
    while out:
        if out[-1] != 0xFF:
            out[-1] += 1
            return bytes(out)
        out.pop()
    return None


def _memtable_source(
    records: list[tuple[bytes, Any]]
) -> Iterator[tuple[bytes, int, bytes]]:
    """Adapt memtable entries into (key, kind, value) records for merging.

    A memtable entry may carry both a base and deltas; encode it as the
    single record an SSTable flush would have produced, except that merges
    stay merges (resolution happens in ``_resolve_read``).
    """
    from repro.kvstore.memtable import BASE_ABSENT

    for key, entry in records:
        if entry.base_kind == BASE_ABSENT:
            yield key, _MEM_MERGE_BUNDLE, encode_value([d for d in entry.deltas])
        elif entry.base_kind == BASE_PUT:
            yield key, _MEM_PUT_BUNDLE, encode_value(
                [entry.base_value, [d for d in entry.deltas]]
            )
        elif entry.base_kind == BASE_DELETE:
            yield key, _MEM_DELETE_BUNDLE, encode_value([d for d in entry.deltas])


# Synthetic record kinds used only between _memtable_source and _resolve_read.
_MEM_MERGE_BUNDLE = 100
_MEM_PUT_BUNDLE = 101
_MEM_DELETE_BUNDLE = 102


def _resolve_read(
    records_newest_first: list[tuple[int, bytes]], operator: MergeOperator | None
) -> Any:
    """Collapse one key's records (newest first) into a value or TOMBSTONE."""
    pending: list[Any] = []  # newest first
    for kind, raw in records_newest_first:
        if kind == KIND_MERGE:
            pending.append(decode_value(raw))
            continue
        if kind == _MEM_MERGE_BUNDLE:
            deltas = [decode_value(d) for d in decode_value(raw)]
            pending.extend(reversed(deltas))
            continue
        if kind == _MEM_PUT_BUNDLE:
            base_raw, delta_raws = decode_value(raw)
            base = decode_value(base_raw)
            deltas = [decode_value(d) for d in delta_raws]
            pending.extend(reversed(deltas))
            if not pending:
                return base
            return _require_op(operator).full_merge(base, list(reversed(pending)))
        if kind == _MEM_DELETE_BUNDLE:
            deltas = [decode_value(d) for d in decode_value(raw)]
            pending.extend(reversed(deltas))
            if not pending:
                return TOMBSTONE
            return _require_op(operator).full_merge(None, list(reversed(pending)))
        if kind == KIND_PUT:
            base = decode_value(raw)
            if not pending:
                return base
            return _require_op(operator).full_merge(base, list(reversed(pending)))
        if kind == KIND_DELETE:
            if not pending:
                return TOMBSTONE
            return _require_op(operator).full_merge(None, list(reversed(pending)))
        raise ValueError(f"unknown record kind {kind}")
    if not pending:
        return TOMBSTONE
    return _require_op(operator).full_merge(None, list(reversed(pending)))


def _flush_entry(entry: Any, operator: MergeOperator | None) -> tuple[int, bytes] | None:
    """Turn a memtable entry into the single SSTable record representing it."""
    from repro.kvstore.memtable import BASE_ABSENT

    if entry.base_kind == BASE_PUT:
        base = decode_value(entry.base_value)
        if entry.deltas:
            deltas = [decode_value(d) for d in entry.deltas]
            base = _require_op(operator).full_merge(base, deltas)
        return KIND_PUT, encode_value(base)
    if entry.base_kind == BASE_DELETE:
        if entry.deltas:
            deltas = [decode_value(d) for d in entry.deltas]
            merged = _require_op(operator).full_merge(None, deltas)
            return KIND_PUT, encode_value(merged)
        return KIND_DELETE, b""
    if entry.base_kind == BASE_ABSENT:
        if not entry.deltas:
            return None
        deltas = [decode_value(d) for d in entry.deltas]
        partial = _require_op(operator).partial_merge(deltas)
        return KIND_MERGE, encode_value(partial)
    raise ValueError(f"unknown base kind {entry.base_kind}")


def _require_op(operator: MergeOperator | None) -> MergeOperator:
    if operator is None:
        raise ValueError("merge deltas present but table has no merge operator")
    return operator
