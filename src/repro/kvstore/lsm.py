"""Durable LSM-tree implementation of :class:`~repro.kvstore.api.KeyValueStore`.

Directory layout::

    <path>/MANIFEST            JSON: tables, SSTable list, flush watermark
    <path>/wal.log             write-ahead log (truncated on flush)
    <path>/sst-<n>.sst         immutable sorted tables (oldest = lowest n
                               position in the manifest list)

Write path: WAL append -> memtable; the memtable flushes to a new SSTable
once it exceeds ``memtable_flush_bytes``, after which the manifest is
atomically swapped and the WAL truncated.  Read path: memtable, then
SSTables newest-to-oldest, combining merge deltas with the table's merge
operator.  Size-tiered compaction keeps the SSTable count bounded.

Keys are namespaced by a 2-byte table id so one physical file set serves all
logical tables, exactly as a Cassandra keyspace does.
"""

from __future__ import annotations

import heapq
import json
import os
import struct
import threading
from typing import Any, Iterator

from repro.kvstore.api import (
    KeyValueStore,
    MergeUnsupportedError,
    StoreClosedError,
    UnknownTableError,
    normalize_key,
)
from repro.kvstore.compaction import merge_records, plan_size_tiered
from repro.kvstore.encoding import (
    Key,
    KeyPart,
    decode_key,
    decode_value,
    encode_key,
    encode_value,
)
from repro.kvstore.memtable import TOMBSTONE, Memtable
from repro.kvstore.merge import MergeOperator, resolve_merge_operator
from repro.kvstore.sstable import SSTableReader, SSTableWriter
from repro.kvstore.wal import KIND_DELETE, KIND_MERGE, KIND_PUT, WriteAheadLog

_TABLE_PREFIX = struct.Struct(">H")
MANIFEST_NAME = "MANIFEST"
WAL_NAME = "wal.log"


class StoreMetrics:
    """Operation counters exposed for tests, benchmarks and tuning.

    Counting is monotonic over the store's lifetime (not persisted);
    ``bloom_skips`` counts SSTables that a point read skipped thanks to a
    negative bloom-filter probe.
    """

    __slots__ = (
        "puts",
        "merges",
        "deletes",
        "gets",
        "scans",
        "flushes",
        "compactions",
        "bloom_skips",
        "sstable_reads",
    )

    def __init__(self) -> None:
        self.puts = 0
        self.merges = 0
        self.deletes = 0
        self.gets = 0
        self.scans = 0
        self.flushes = 0
        self.compactions = 0
        self.bloom_skips = 0
        self.sstable_reads = 0

    def snapshot(self) -> dict[str, int]:
        """Current counter values as a plain dict."""
        return {name: getattr(self, name) for name in self.__slots__}


class LSMStore(KeyValueStore):
    """File-backed LSM store; see the module docstring for the design."""

    def __init__(
        self,
        path: str,
        memtable_flush_bytes: int = 4 * 1024 * 1024,
        sync_wal: bool = False,
        compaction_min_tables: int = 4,
        auto_compact: bool = True,
    ) -> None:
        self._path = path
        self._memtable_flush_bytes = memtable_flush_bytes
        self._compaction_min_tables = compaction_min_tables
        self._auto_compact = auto_compact
        self._lock = threading.RLock()
        self._closed = False
        os.makedirs(path, exist_ok=True)

        self.metrics = StoreMetrics()
        self._tables: dict[str, int] = {}
        self._merge_ops: dict[int, MergeOperator | None] = {}
        self._merge_op_names: dict[str, str | None] = {}
        self._sstables: list[SSTableReader] = []  # oldest -> newest
        self._next_table_id = 1
        self._next_sst_id = 1
        self._last_flushed_seq = 0
        self._next_seq = 1

        self._load_manifest()
        self._memtable = Memtable()
        self._replay_wal()
        self._wal = WriteAheadLog(os.path.join(path, WAL_NAME), sync=sync_wal)

    # -- manifest and recovery -------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self._path, MANIFEST_NAME)

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if not os.path.exists(path):
            self._write_manifest()
            return
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        self._next_table_id = manifest["next_table_id"]
        self._next_sst_id = manifest["next_sst_id"]
        self._last_flushed_seq = manifest["last_flushed_seq"]
        for name, spec in manifest["tables"].items():
            table_id = spec["id"]
            op_name = spec["merge"]
            self._tables[name] = table_id
            self._merge_op_names[name] = op_name
            self._merge_ops[table_id] = (
                resolve_merge_operator(op_name) if op_name else None
            )
        for filename in manifest["sstables"]:
            self._sstables.append(SSTableReader(os.path.join(self._path, filename)))

    def _write_manifest(self) -> None:
        manifest = {
            "version": 1,
            "next_table_id": self._next_table_id,
            "next_sst_id": self._next_sst_id,
            "last_flushed_seq": self._last_flushed_seq,
            "tables": {
                name: {"id": table_id, "merge": self._merge_op_names.get(name)}
                for name, table_id in self._tables.items()
            },
            "sstables": [os.path.basename(r.path) for r in self._sstables],
        }
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path())

    def _replay_wal(self) -> None:
        wal_path = os.path.join(self._path, WAL_NAME)
        max_seq = self._last_flushed_seq
        for record in WriteAheadLog.replay(wal_path):
            if record.seqno > self._last_flushed_seq:
                self._memtable.apply(record.kind, record.key, record.value)
            max_seq = max(max_seq, record.seqno)
        self._next_seq = max_seq + 1

    # -- table management -------------------------------------------------------

    def create_table(self, name: str, merge_operator: str | None = None) -> None:
        self._check_open()
        with self._lock:
            if name in self._tables:
                if self._merge_op_names.get(name) != merge_operator:
                    raise ValueError(
                        f"table {name!r} already exists with merge operator "
                        f"{self._merge_op_names.get(name)!r}, not {merge_operator!r}"
                    )
                return
            table_id = self._next_table_id
            self._next_table_id += 1
            self._tables[name] = table_id
            self._merge_op_names[name] = merge_operator
            self._merge_ops[table_id] = (
                resolve_merge_operator(merge_operator) if merge_operator else None
            )
            self._write_manifest()

    def has_table(self, name: str) -> bool:
        self._check_open()
        return name in self._tables

    def _table_id(self, name: str) -> int:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"table {name!r} does not exist") from None

    def _full_key(self, table: str, key: KeyPart | Key) -> bytes:
        return _TABLE_PREFIX.pack(self._table_id(table)) + encode_key(normalize_key(key))

    def _operator_for_full_key(self, full_key: bytes) -> MergeOperator | None:
        (table_id,) = _TABLE_PREFIX.unpack_from(full_key, 0)
        return self._merge_ops.get(table_id)

    # -- write path ---------------------------------------------------------------

    def _log_and_apply(self, kind: int, full_key: bytes, value: bytes) -> None:
        with self._lock:
            self._check_open()
            seqno = self._next_seq
            self._next_seq += 1
            self._wal.append(seqno, kind, full_key, value)
            self._memtable.apply(kind, full_key, value)
            if self._memtable.approximate_bytes >= self._memtable_flush_bytes:
                self._flush_locked()

    def put(self, table: str, key: KeyPart | Key, value: Any) -> None:
        self.metrics.puts += 1
        self._log_and_apply(KIND_PUT, self._full_key(table, key), encode_value(value))

    def merge(self, table: str, key: KeyPart | Key, delta: Any) -> None:
        full_key = self._full_key(table, key)
        if self._operator_for_full_key(full_key) is None:
            raise MergeUnsupportedError(f"table {table!r} has no merge operator")
        self.metrics.merges += 1
        self._log_and_apply(KIND_MERGE, full_key, encode_value(delta))

    def delete(self, table: str, key: KeyPart | Key) -> None:
        self.metrics.deletes += 1
        self._log_and_apply(KIND_DELETE, self._full_key(table, key), b"")

    # -- read path -----------------------------------------------------------------

    def get(self, table: str, key: KeyPart | Key, default: Any = None) -> Any:
        with self._lock:
            self._check_open()
            self.metrics.gets += 1
            full_key = self._full_key(table, key)
            operator = self._operator_for_full_key(full_key)
            resolved, value = self._memtable.resolve(full_key, operator)
            if resolved:
                return default if value is TOMBSTONE else value
            pending: list[Any] = []
            entry = self._memtable.lookup(full_key)
            if entry is not None:
                pending.extend(decode_value(d) for d in reversed(entry.deltas))
            # pending is newest-first from here on.
            for reader in reversed(self._sstables):
                if not reader.may_contain(full_key):
                    self.metrics.bloom_skips += 1
                    continue
                self.metrics.sstable_reads += 1
                record = reader.get(full_key)
                if record is None:
                    continue
                kind, raw = record
                if kind == KIND_MERGE:
                    pending.append(decode_value(raw))
                    continue
                base = decode_value(raw) if kind == KIND_PUT else None
                if not pending:
                    return base if kind == KIND_PUT else default
                return _require_op(operator).full_merge(base, list(reversed(pending)))
            if not pending:
                return default
            return _require_op(operator).full_merge(None, list(reversed(pending)))

    def scan(
        self, table: str, prefix: KeyPart | Key | None = None
    ) -> Iterator[tuple[Key, Any]]:
        # Materialize under the lock: scans are used for bounded key ranges
        # (per-table or per-prefix), and a snapshot keeps iteration safe
        # against concurrent flushes/compactions.
        with self._lock:
            self._check_open()
            self.metrics.scans += 1
            table_id = self._table_id(table)
            low = _TABLE_PREFIX.pack(table_id)
            if prefix is not None:
                low += encode_key(normalize_key(prefix))
            high = _prefix_successor(low)
            operator = self._merge_ops.get(table_id)
            results = list(self._scan_locked(low, high, operator))
        return iter(results)

    def scan_range(
        self,
        table: str,
        start: KeyPart | Key | None = None,
        stop: KeyPart | Key | None = None,
    ) -> Iterator[tuple[Key, Any]]:
        with self._lock:
            self._check_open()
            self.metrics.scans += 1
            table_id = self._table_id(table)
            table_prefix = _TABLE_PREFIX.pack(table_id)
            low = table_prefix
            if start is not None:
                low += encode_key(normalize_key(start))
            if stop is not None:
                high: bytes | None = table_prefix + encode_key(normalize_key(stop))
            else:
                high = _prefix_successor(table_prefix)
            operator = self._merge_ops.get(table_id)
            results = list(self._scan_locked(low, high, operator))
        return iter(results)

    def _scan_locked(
        self, low: bytes, high: bytes | None, operator: MergeOperator | None
    ) -> Iterator[tuple[Key, Any]]:
        sources: list[Iterator[tuple[bytes, int, bytes]]] = []
        mem_records = [
            (key, entry)
            for key, entry in self._memtable.iter_sorted()
            if key >= low
        ]
        sources.append(_memtable_source(mem_records))
        for reader in reversed(self._sstables):
            sources.append(reader.iter_from_key(low))
        heap: list[tuple[bytes, int, int, bytes, Iterator[tuple[bytes, int, bytes]]]] = []
        for rank, source in enumerate(sources):
            first = next(source, None)
            if first is not None:
                key, kind, value = first
                heapq.heappush(heap, (key, rank, kind, value, source))
        while heap:
            key = heap[0][0]
            if high is not None and key >= high:
                break
            records: list[tuple[int, bytes]] = []
            while heap and heap[0][0] == key:
                _, rank, kind, value, source = heapq.heappop(heap)
                records.append((kind, value))
                nxt = next(source, None)
                if nxt is not None:
                    nkey, nkind, nvalue = nxt
                    heapq.heappush(heap, (nkey, rank, nkind, nvalue, source))
            value_obj = _resolve_read(records, operator)
            if value_obj is not TOMBSTONE:
                yield decode_key(key[_TABLE_PREFIX.size :]), value_obj

    # -- flush & compaction -----------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            self._check_open()
            self._flush_locked()

    def _flush_locked(self) -> None:
        if len(self._memtable) == 0:
            return
        filename = f"sst-{self._next_sst_id:06d}.sst"
        self._next_sst_id += 1
        writer = SSTableWriter(
            os.path.join(self._path, filename), expected_records=len(self._memtable)
        )
        try:
            for key, entry in self._memtable.iter_sorted():
                record = _flush_entry(entry, self._operator_for_full_key(key))
                if record is not None:
                    kind, value = record
                    writer.add(key, kind, value)
        except BaseException:
            writer.abort()
            raise
        reader = writer.finish()
        self.metrics.flushes += 1
        self._sstables.append(reader)
        self._last_flushed_seq = self._next_seq - 1
        self._write_manifest()
        self._wal.truncate()
        self._memtable.clear()
        if self._auto_compact:
            self._maybe_compact_locked()

    def compact(self) -> bool:
        """Run one compaction round if a qualifying run exists."""
        with self._lock:
            self._check_open()
            return self._maybe_compact_locked()

    def compact_all(self) -> None:
        """Force-merge every SSTable into one (full major compaction)."""
        with self._lock:
            self._check_open()
            self._flush_locked()
            if len(self._sstables) > 1:
                self._compact_range_locked(0, len(self._sstables))

    def _maybe_compact_locked(self) -> bool:
        sizes = [reader.data_bytes for reader in self._sstables]
        plan = plan_size_tiered(sizes, min_tables=self._compaction_min_tables)
        if plan is None:
            return False
        self._compact_range_locked(plan.start, plan.stop)
        return True

    def _compact_range_locked(self, start: int, stop: int) -> None:
        run = self._sstables[start:stop]
        finalize = start == 0
        filename = f"sst-{self._next_sst_id:06d}.sst"
        self._next_sst_id += 1
        expected = sum(r.record_count for r in run)
        writer = SSTableWriter(os.path.join(self._path, filename), expected_records=expected)
        try:
            for kind, key, value in merge_records(
                run, self._operator_for_full_key, finalize
            ):
                writer.add(key, kind, value)
        except BaseException:
            writer.abort()
            raise
        merged = writer.finish()
        self.metrics.compactions += 1
        self._sstables[start:stop] = [merged]
        self._write_manifest()
        for reader in run:
            reader.close()
            os.remove(reader.path)

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            self._wal.close()
            for reader in self._sstables:
                reader.close()
            self._closed = True

    @property
    def sstable_count(self) -> int:
        """Number of live SSTables (exposed for tests and introspection)."""
        with self._lock:
            return len(self._sstables)

    def verify(self) -> None:
        """Scrub every SSTable's data section against its checksum.

        Raises :class:`~repro.kvstore.api.CorruptionError` on the first
        mismatch.  Metadata (index/bloom/footer) is already verified on
        open; this pass covers the record payloads.
        """
        with self._lock:
            self._check_open()
            for reader in self._sstables:
                reader.verify()

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")


def _prefix_successor(prefix: bytes) -> bytes | None:
    """Smallest byte string greater than every string starting with ``prefix``.

    Increment the last non-0xFF byte and truncate; all-0xFF prefixes have
    no successor (``None`` = scan to the end).
    """
    out = bytearray(prefix)
    while out:
        if out[-1] != 0xFF:
            out[-1] += 1
            return bytes(out)
        out.pop()
    return None


def _memtable_source(
    records: list[tuple[bytes, Any]]
) -> Iterator[tuple[bytes, int, bytes]]:
    """Adapt memtable entries into (key, kind, value) records for merging.

    A memtable entry may carry both a base and deltas; encode it as the
    single record an SSTable flush would have produced, except that merges
    stay merges (resolution happens in ``_resolve_read``).
    """
    from repro.kvstore.memtable import BASE_ABSENT, BASE_DELETE, BASE_PUT

    for key, entry in records:
        if entry.base_kind == BASE_ABSENT:
            yield key, _MEM_MERGE_BUNDLE, encode_value([d for d in entry.deltas])
        elif entry.base_kind == BASE_PUT:
            yield key, _MEM_PUT_BUNDLE, encode_value(
                [entry.base_value, [d for d in entry.deltas]]
            )
        elif entry.base_kind == BASE_DELETE:
            yield key, _MEM_DELETE_BUNDLE, encode_value([d for d in entry.deltas])


# Synthetic record kinds used only between _memtable_source and _resolve_read.
_MEM_MERGE_BUNDLE = 100
_MEM_PUT_BUNDLE = 101
_MEM_DELETE_BUNDLE = 102


def _resolve_read(
    records_newest_first: list[tuple[int, bytes]], operator: MergeOperator | None
) -> Any:
    """Collapse one key's records (newest first) into a value or TOMBSTONE."""
    pending: list[Any] = []  # newest first
    for kind, raw in records_newest_first:
        if kind == KIND_MERGE:
            pending.append(decode_value(raw))
            continue
        if kind == _MEM_MERGE_BUNDLE:
            deltas = [decode_value(d) for d in decode_value(raw)]
            pending.extend(reversed(deltas))
            continue
        if kind == _MEM_PUT_BUNDLE:
            base_raw, delta_raws = decode_value(raw)
            base = decode_value(base_raw)
            deltas = [decode_value(d) for d in delta_raws]
            pending.extend(reversed(deltas))
            if not pending:
                return base
            return _require_op(operator).full_merge(base, list(reversed(pending)))
        if kind == _MEM_DELETE_BUNDLE:
            deltas = [decode_value(d) for d in decode_value(raw)]
            pending.extend(reversed(deltas))
            if not pending:
                return TOMBSTONE
            return _require_op(operator).full_merge(None, list(reversed(pending)))
        if kind == KIND_PUT:
            base = decode_value(raw)
            if not pending:
                return base
            return _require_op(operator).full_merge(base, list(reversed(pending)))
        if kind == KIND_DELETE:
            if not pending:
                return TOMBSTONE
            return _require_op(operator).full_merge(None, list(reversed(pending)))
        raise ValueError(f"unknown record kind {kind}")
    if not pending:
        return TOMBSTONE
    return _require_op(operator).full_merge(None, list(reversed(pending)))


def _flush_entry(entry: Any, operator: MergeOperator | None) -> tuple[int, bytes] | None:
    """Turn a memtable entry into the single SSTable record representing it."""
    from repro.kvstore.memtable import BASE_ABSENT, BASE_DELETE, BASE_PUT

    if entry.base_kind == BASE_PUT:
        base = decode_value(entry.base_value)
        if entry.deltas:
            deltas = [decode_value(d) for d in entry.deltas]
            base = _require_op(operator).full_merge(base, deltas)
        return KIND_PUT, encode_value(base)
    if entry.base_kind == BASE_DELETE:
        if entry.deltas:
            deltas = [decode_value(d) for d in entry.deltas]
            merged = _require_op(operator).full_merge(None, deltas)
            return KIND_PUT, encode_value(merged)
        return KIND_DELETE, b""
    if entry.base_kind == BASE_ABSENT:
        if not entry.deltas:
            return None
        deltas = [decode_value(d) for d in entry.deltas]
        partial = _require_op(operator).partial_merge(deltas)
        return KIND_MERGE, encode_value(partial)
    raise ValueError(f"unknown base kind {entry.base_kind}")


def _require_op(operator: MergeOperator | None) -> MergeOperator:
    if operator is None:
        raise ValueError("merge deltas present but table has no merge operator")
    return operator
