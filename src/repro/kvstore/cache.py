"""Caching primitives of the serving layer.

Two users:

* :class:`BlockCache` -- shared per-store LRU over SSTable data blocks (the
  byte range between two consecutive sparse-index entries, parsed into
  records).  SSTables are immutable, so entries never go stale; a reader
  evicts its own blocks when the table is closed (post-compaction), which
  keys the cache by a per-reader uid rather than by file name -- a recycled
  file name can never alias a dead table's blocks.
* the query-result cache in :class:`repro.core.engine.SequenceIndex` --
  entry-counted LRU whose keys embed the index's write generation, so a
  batch update invalidates by construction instead of by sweeping.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable


class LRUCache:
    """Thread-safe LRU cache with weighted capacity.

    ``capacity`` is interpreted in the same unit as the ``weight`` passed to
    :meth:`put` (bytes for the block cache, entries for the query cache).
    An item heavier than the whole capacity is simply not cached.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._weight = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: Hashable, value: Any, weight: int = 1) -> None:
        with self._lock:
            if weight > self._capacity:
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._weight -= old[1]
            self._entries[key] = (value, weight)
            self._weight += weight
            while self._weight > self._capacity:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._weight -= dropped
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._weight = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def weight(self) -> int:
        """Current total weight of all cached entries."""
        with self._lock:
            return self._weight

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "weight": self._weight,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class BlockCache(LRUCache):
    """LRU over SSTable data blocks, keyed by ``(reader_uid, block_slot)``.

    Optionally mirrors its hit/miss counts into a store's
    :class:`~repro.kvstore.lsm.StoreMetrics` so the cache shows up in the
    ``lsm`` metrics snapshot alongside flush/compaction counters.
    """

    def __init__(self, capacity_bytes: int, metrics: Any = None) -> None:
        super().__init__(capacity_bytes)
        self._metrics = metrics

    def get(self, key: Hashable, default: Any = None) -> Any:
        sentinel = object()
        value = super().get(key, sentinel)
        if self._metrics is not None:
            self._metrics.bump(
                "block_cache_misses" if value is sentinel else "block_cache_hits"
            )
        return default if value is sentinel else value

    def evict_owner(self, owner: Hashable) -> None:
        """Drop every block belonging to ``owner`` (a closed reader's uid)."""
        self.evict_owners((owner,))

    def evict_owners(self, owners) -> None:
        """Drop the blocks of several retired readers in one sweep.

        A leveled cascade retires all of a merge's inputs at once; a single
        pass over the cache replaces one full scan per closed reader.
        """
        owners = frozenset(owners)
        with self._lock:
            dead = [key for key in self._entries if key[0] in owners]
            for key in dead:
                _, weight = self._entries.pop(key)
                self._weight -= weight
