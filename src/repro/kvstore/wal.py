"""Write-ahead log: crash durability for the memtable.

Every mutation is appended as a framed, CRC-checked record *before* it is
applied to the memtable.  Records carry monotonically increasing sequence
numbers; the manifest remembers the last sequence number made durable in an
SSTable, so replay after a crash (or after a flush that did not truncate)
skips everything already persisted and never double-applies a merge delta.

Frame layout::

    [u32 crc32(payload)] [u32 len(payload)] [payload]

Payload layout::

    [u64 seqno] [u8 kind] [u32 klen] [key bytes] [u32 vlen] [value bytes]

A torn final frame (crash mid-write) is detected by length/CRC and replay
stops there; everything before it is intact.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator

from repro.faults.io import REAL_IO
from repro.kvstore.api import CorruptionError

KIND_PUT = 1
KIND_DELETE = 2
KIND_MERGE = 3

_FRAME = struct.Struct(">II")
_PAYLOAD_HEAD = struct.Struct(">QBI")
_VLEN = struct.Struct(">I")


class WalRecord:
    """A single replayed WAL entry."""

    __slots__ = ("seqno", "kind", "key", "value")

    def __init__(self, seqno: int, kind: int, key: bytes, value: bytes) -> None:
        self.seqno = seqno
        self.kind = kind
        self.key = key
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WalRecord(seqno={self.seqno}, kind={self.kind}, key={self.key!r})"


class WriteAheadLog:
    """Appender/replayer over a single WAL file."""

    def __init__(self, path: str, sync: bool = False, io=None) -> None:
        self._path = path
        self._sync = sync
        self._io = io or REAL_IO
        self._file = self._io.open(path, "ab")

    @property
    def path(self) -> str:
        return self._path

    def append(self, seqno: int, kind: int, key: bytes, value: bytes) -> None:
        """Write one record; flushes to the OS (and optionally fsyncs)."""
        payload = (
            _PAYLOAD_HEAD.pack(seqno, kind, len(key))
            + key
            + _VLEN.pack(len(value))
            + value
        )
        frame = _FRAME.pack(zlib.crc32(payload), len(payload)) + payload
        self._file.write(frame)
        self._file.flush()
        if self._sync:
            self._io.fsync(self._file)

    def truncate(self) -> None:
        """Discard all records (called after a successful memtable flush)."""
        self._file.truncate(0)
        self._file.seek(0)
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    @staticmethod
    def replay(path: str) -> Iterator[WalRecord]:
        """Yield intact records from ``path``; stop cleanly at a torn tail.

        Raises :class:`CorruptionError` only for corruption *before* the tail
        (a bad CRC followed by more data), which indicates real damage rather
        than a mid-write crash.
        """
        if not os.path.exists(path):
            return
        with open(path, "rb") as fh:
            data = fh.read()
        pos = 0
        total = len(data)
        while pos < total:
            if pos + _FRAME.size > total:
                return  # torn frame header at the tail
            crc, length = _FRAME.unpack_from(data, pos)
            body_start = pos + _FRAME.size
            body_end = body_start + length
            if body_end > total:
                return  # torn payload at the tail
            payload = data[body_start:body_end]
            if zlib.crc32(payload) != crc:
                if body_end == total:
                    return  # corrupt final frame: treat as torn tail
                raise CorruptionError(f"WAL CRC mismatch at offset {pos} in {path}")
            seqno, kind, klen = _PAYLOAD_HEAD.unpack_from(payload, 0)
            off = _PAYLOAD_HEAD.size
            key = payload[off : off + klen]
            off += klen
            (vlen,) = _VLEN.unpack_from(payload, off)
            off += _VLEN.size
            value = payload[off : off + vlen]
            if off + vlen != len(payload):
                raise CorruptionError(f"WAL payload length mismatch at offset {pos}")
            yield WalRecord(seqno, kind, key, value)
            pos = body_end
