"""Optional per-block compression codecs for SSTable v2 files.

zlib ships with CPython and is always available; zstd is used only when
the ``zstandard`` package is installed (the import is gated, never
required -- ``resolve_compression("zstd")`` raises a clear error when the
package is absent instead of failing at import time).

Codec ids are part of the on-disk format (one byte per block header), so
they are append-only: never renumber.
"""

from __future__ import annotations

import zlib

try:  # optional dependency: present on some deployments only
    import zstandard as _zstd
except ImportError:  # pragma: no cover - exercised via zstd_available()
    _zstd = None

CODEC_NONE = 0
CODEC_ZLIB = 1
CODEC_ZSTD = 2

_NAMES = {CODEC_NONE: "none", CODEC_ZLIB: "zlib", CODEC_ZSTD: "zstd"}


def zstd_available() -> bool:
    return _zstd is not None


def codec_name(codec: int) -> str:
    return _NAMES.get(codec, f"unknown({codec})")


def resolve_compression(name: str | None) -> int:
    """Map a store-level ``compression=`` knob to a codec id.

    Accepts ``None``/``"none"``, ``"zlib"`` and ``"zstd"``; requesting
    zstd without the ``zstandard`` package raises ``ValueError`` at store
    open (fail fast), not at first flush.
    """
    if name is None or name == "none":
        return CODEC_NONE
    if name == "zlib":
        return CODEC_ZLIB
    if name == "zstd":
        if _zstd is None:
            raise ValueError(
                "compression='zstd' requires the optional 'zstandard' package"
            )
        return CODEC_ZSTD
    raise ValueError(f"unknown compression codec {name!r} (use 'zlib' or 'zstd')")


def compress(codec: int, raw: bytes) -> bytes:
    if codec == CODEC_ZLIB:
        return zlib.compress(raw, 6)
    if codec == CODEC_ZSTD:
        return _zstd.ZstdCompressor().compress(raw)
    return raw


def decompress(codec: int, stored: bytes, raw_len: int) -> bytes:
    """Inverse of :func:`compress`; raises ``ValueError`` on any failure.

    ``raw_len`` (from the block header) bounds the output and is verified
    against the actual decompressed size, so a corrupt length field can
    neither balloon memory nor yield a silently short block.
    """
    if codec == CODEC_NONE:
        if len(stored) != raw_len:
            raise ValueError("stored/raw length mismatch for uncompressed block")
        return stored
    try:
        if codec == CODEC_ZLIB:
            raw = zlib.decompress(stored)
        elif codec == CODEC_ZSTD:
            if _zstd is None:
                raise ValueError(
                    "block is zstd-compressed but 'zstandard' is not installed"
                )
            raw = _zstd.ZstdDecompressor().decompress(stored, max_output_size=raw_len)
        else:
            raise ValueError(f"unknown block codec id {codec}")
    except ValueError:
        raise
    except Exception as exc:  # zlib.error / ZstdError -> uniform ValueError
        raise ValueError(f"block decompression failed: {exc}") from None
    if len(raw) != raw_len:
        raise ValueError(
            f"block decompressed to {len(raw)} bytes, header says {raw_len}"
        )
    return raw
