"""Table 7: strict-contiguity query response, [19] vs our index.

Paper shape: [19] is flat (~2ms) regardless of pattern length; our response
grows with pattern length but stays in the same ballpark for short
patterns, while returning all sub-pattern detections as a by-product.
"""

from __future__ import annotations

import pytest

from conftest import CORE_DATASETS, SCALE
from repro.baselines.suffix import SuffixArrayMatcher
from repro.bench.workloads import contiguous_patterns, prepared_dataset, prepared_index
from repro.core.policies import Policy

_MATCHER_CACHE = {}


def _matcher(name):
    if name not in _MATCHER_CACHE:
        _MATCHER_CACHE[name] = SuffixArrayMatcher(prepared_dataset(name, SCALE))
    return _MATCHER_CACHE[name]


@pytest.mark.parametrize("name", CORE_DATASETS)
@pytest.mark.parametrize("length", (2, 10))
def test_sc_query_suffix_19(benchmark, name, length):
    matcher = _matcher(name)
    patterns = contiguous_patterns(prepared_dataset(name, SCALE), length, 20, seed=7)

    def run():
        return [matcher.detect(p) for p in patterns]

    results = benchmark(run)
    assert any(results)  # patterns are sampled from traces, so matches exist


@pytest.mark.parametrize("name", CORE_DATASETS)
@pytest.mark.parametrize("length", (2, 10))
def test_sc_query_ours(benchmark, name, length):
    log = prepared_dataset(name, SCALE)
    index = prepared_index(name, SCALE, Policy.SC)
    patterns = contiguous_patterns(log, length, 20, seed=7)

    def run():
        return [index.detect(p) for p in patterns]

    results = benchmark(run)
    assert any(results)
