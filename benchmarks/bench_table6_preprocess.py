"""Table 6: pre-processing time of every system.

Paper shape: [19] wins on the small synthetic logs but collapses on real
(BPI) logs -- two orders of magnitude slower, failing entirely on BPI 2017;
our Strict/Indexing builds scale with the log and parallelise; the
Elasticsearch-style index sits between them on large logs.
"""

from __future__ import annotations

import pytest

from conftest import CORE_DATASETS, SCALE
from repro.baselines.elastic import ElasticIndex
from repro.baselines.suffix import SuffixArrayMatcher
from repro.bench.workloads import build_index, prepared_dataset
from repro.core.policies import PairMethod, Policy


@pytest.mark.parametrize("name", CORE_DATASETS)
def test_preprocess_suffix_19(benchmark, name):
    log = prepared_dataset(name, SCALE)
    matcher = benchmark.pedantic(lambda: SuffixArrayMatcher(log), rounds=3, iterations=1)
    benchmark.extra_info["distinct_traces"] = matcher.stats.distinct_traces


@pytest.mark.parametrize("name", CORE_DATASETS)
def test_preprocess_strict(benchmark, name):
    log = prepared_dataset(name, SCALE)
    benchmark.pedantic(
        lambda: build_index(log, Policy.SC, PairMethod.STRICT), rounds=3, iterations=1
    )


@pytest.mark.parametrize("name", CORE_DATASETS)
def test_preprocess_indexing(benchmark, name):
    log = prepared_dataset(name, SCALE)
    benchmark.pedantic(
        lambda: build_index(log, Policy.STNM, PairMethod.INDEXING),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("name", CORE_DATASETS)
def test_preprocess_elasticsearch(benchmark, name):
    log = prepared_dataset(name, SCALE)
    index = benchmark.pedantic(lambda: ElasticIndex.from_log(log), rounds=3, iterations=1)
    assert index.num_documents == len(log)
