"""Ablation: incremental index maintenance (Algorithm 1) vs full rebuild.

The paper's architecture exists so that periodic batches cost O(batch), not
O(log).  This bench indexes a base log once, then times (a) appending one
small batch via LastChecked-guided incremental update and (b) rebuilding
everything from scratch.
"""

from __future__ import annotations

from conftest import SCALE
from repro.bench.workloads import build_index, prepared_dataset
from repro.core.engine import SequenceIndex
from repro.core.model import Event
from repro.core.policies import Policy

DATASET = "med_5000"


def _base_and_batch():
    log = prepared_dataset(DATASET, SCALE)
    trace_ids = log.trace_ids[: max(1, len(log) // 10)]
    batch = []
    for trace_id in trace_ids:
        trace = log.trace(trace_id)
        tail = trace.timestamps[-1]
        for i, activity in enumerate(trace.activities[:5]):
            batch.append(Event(trace_id, activity, tail + 1 + i))
    return log, batch


def test_incremental_batch_append(benchmark):
    log, batch = _base_and_batch()
    base_index = build_index(log, Policy.STNM)
    store = base_index.store

    # Appending the same batch repeatedly keeps timestamps increasing per
    # round, so each benchmark round is a valid incremental update.
    offset = [0.0]

    def run():
        offset[0] += 1000.0
        shifted = [
            Event(ev.trace_id, ev.activity, ev.timestamp + offset[0]) for ev in batch
        ]
        index = SequenceIndex(store, policy=Policy.STNM)
        return index.update(shifted)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.events_indexed == len(batch)


def test_full_rebuild(benchmark):
    log, _ = _base_and_batch()
    benchmark.pedantic(lambda: build_index(log, Policy.STNM), rounds=3, iterations=1)
