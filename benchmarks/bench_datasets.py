"""Table 4 / Figure 2: dataset generation and profiling.

Times the workload substrate itself (log generation and shape profiling)
and records each dataset's Table 4 row in the benchmark metadata.
"""

from __future__ import annotations

import pytest

from conftest import CORE_DATASETS, SCALE
from repro.logs.datasets import load_dataset
from repro.logs.stats import profile_log


@pytest.mark.parametrize("name", CORE_DATASETS)
def test_generate_dataset(benchmark, name):
    log = benchmark.pedantic(
        lambda: load_dataset(name, scale=SCALE), rounds=3, iterations=1
    )
    profile = profile_log(log)
    benchmark.extra_info["traces"] = profile.num_traces
    benchmark.extra_info["activities"] = profile.num_activities
    benchmark.extra_info["events"] = profile.num_events
    assert profile.num_traces > 0


@pytest.mark.parametrize("name", CORE_DATASETS)
def test_profile_dataset(benchmark, name):
    log = load_dataset(name, scale=SCALE)
    profile = benchmark(profile_log, log)
    assert profile.events_per_trace.maximum >= profile.events_per_trace.minimum
