"""Sharded scatter-gather service vs the single-store engine.

Smoke benchmarks for the sharded pair index and its query service (runner
twin: ``python -m repro.bench.runner sharded_service``, which also writes
the ``BENCH_sharded_service.json`` perf-trajectory snapshot and
``results/sharded_service.csv``):

* the service read path -- Table 8 rare-pair length-10 patterns through a
  real socket client -- for the single-store engine and 1/2/4 shards;
* the mixed read/write closed loop, where per-shard write generations let
  untouched shards keep their warm caches while the single-store engine
  evicts everything on every ingest.
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.bench.workloads import prepared_dataset, rare_pair_patterns
from repro.core.engine import SequenceIndex
from repro.kvstore import LSMStore
from repro.service import SequenceService, ServiceClient, run_loadgen
from repro.shard import ShardedSequenceIndex

DATASET = "max_10000"
PATTERN_LENGTH = 10
PATTERNS = 6

SHARD_CONFIGS = (None, 1, 2, 4)  # None = single-store engine
_IDS = ("single", "sharded-1", "sharded-2", "sharded-4")


def _store_factory(path):
    return LSMStore(str(path), memtable_flush_bytes=256 * 1024)


@pytest.fixture(scope="module")
def workload():
    log = prepared_dataset(DATASET, SCALE)
    probe = SequenceIndex()
    probe.update(log)
    patterns = rare_pair_patterns(log, probe, PATTERN_LENGTH, PATTERNS)
    probe.close()
    return log, patterns


@pytest.fixture(params=SHARD_CONFIGS, ids=_IDS)
def served_engine(request, tmp_path, workload):
    log, patterns = workload
    if request.param is None:
        engine = SequenceIndex(_store_factory(tmp_path / "db"))
    else:
        engine = ShardedSequenceIndex.open(
            tmp_path / "db", _store_factory, num_shards=request.param
        )
    engine.update(log)
    service = SequenceService(engine, port=0, max_inflight=16)
    service.start()
    yield service, patterns
    service.shutdown()
    engine.close()


def test_service_read_path(benchmark, served_engine):
    """Socket round-trip detect() of every rare-pair pattern."""
    service, patterns = served_engine
    host, port = service.address
    with ServiceClient(host, port) as client:
        benchmark(lambda: [client.detect(p) for p in patterns])


def test_service_mixed_read_write(benchmark, served_engine):
    """One closed-loop burst of mixed traffic; throughput = ops/round."""
    service, patterns = served_engine
    host, port = service.address

    def burst():
        report = run_loadgen(
            host,
            port,
            patterns,
            clients=4,
            duration_s=1.0,
            write_fraction=0.2,
            seed=1,
        )
        assert report.errors == 0
        return report

    report = benchmark.pedantic(burst, rounds=1, iterations=1)
    benchmark.extra_info["qps"] = report.qps
    benchmark.extra_info["read_p99_ms"] = report.latency_ms.get(
        "read", {}
    ).get("p99")
