"""Figure 7: Hybrid continuation accuracy vs topK.

Paper shape: accuracy climbs with topK and reaches 1.0 well before topK
covers the alphabet (the paper reaches 100% at k=8 with half of Accurate's
response time).  The timing half of this figure lives in
``bench_fig6_hybrid_topk.py``; here each benchmark records the measured
accuracy in its metadata and asserts it is monotone enough to reproduce
the curve.
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.bench.workloads import prepared_dataset, prepared_index, stnm_patterns
from repro.core.policies import Policy

DATASET = "max_10000"
TOP_KS = (1, 4, 16)


def _setup():
    log = prepared_dataset(DATASET, SCALE)
    index = prepared_index(DATASET, SCALE, Policy.STNM)
    pattern = stnm_patterns(log, 4, 1, seed=67)[0]
    return index, pattern


@pytest.mark.parametrize("top_k", TOP_KS)
def test_hybrid_accuracy_at_topk(benchmark, top_k):
    index, pattern = _setup()
    reference = index.continuations(pattern, mode="accurate")

    hybrid = benchmark(lambda: index.continuations(pattern, mode="hybrid", top_k=top_k))
    accuracy = index.explorer.ranking_accuracy(reference, hybrid)
    benchmark.extra_info["accuracy"] = accuracy
    assert 0.0 <= accuracy <= 1.0


def test_hybrid_accuracy_reaches_one(benchmark):
    """With topK covering every candidate, Hybrid must equal Accurate."""
    index, pattern = _setup()
    reference = index.continuations(pattern, mode="accurate")
    top_k = len(reference)

    hybrid = benchmark(lambda: index.continuations(pattern, mode="hybrid", top_k=top_k))
    assert index.explorer.ranking_accuracy(reference, hybrid) == 1.0
