"""Figure 6: Hybrid continuation response time vs the topK parameter.

Paper shape: Hybrid's time grows linearly in topK, bracketed below by Fast
(topK=0) and above by Accurate (topK = alphabet size).
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.bench.workloads import prepared_dataset, prepared_index, stnm_patterns
from repro.core.policies import Policy

DATASET = "max_10000"
TOP_KS = (0, 2, 4, 8)


def _setup():
    log = prepared_dataset(DATASET, SCALE)
    index = prepared_index(DATASET, SCALE, Policy.STNM)
    pattern = stnm_patterns(log, 4, 1, seed=67)[0]
    return index, pattern


@pytest.mark.parametrize("top_k", TOP_KS)
def test_continuation_hybrid_topk(benchmark, top_k):
    index, pattern = _setup()
    proposals = benchmark(
        lambda: index.continuations(pattern, mode="hybrid", top_k=top_k)
    )
    assert proposals is not None


def test_continuation_accurate_reference(benchmark):
    index, pattern = _setup()
    benchmark(lambda: index.continuations(pattern, mode="accurate"))


def test_continuation_fast_reference(benchmark):
    index, pattern = _setup()
    benchmark(lambda: index.continuations(pattern, mode="fast"))
