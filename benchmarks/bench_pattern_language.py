"""Composite-pattern queries: indexed prune-then-verify vs the SASE oracle.

Smoke benchmarks for the pattern language (runner twin:
``python -m repro.bench.runner pattern_language``, which also writes the
``BENCH_pattern_language.json`` perf-trajectory snapshot):

* the composite workload -- windowed / alternation / kleene / negation
  variants of gapped subsequences of real traces -- evaluated through
  the pair-index prune-then-verify path on an LSM-backed index;
* the same workload through the SASE NFA full scan, the streaming
  oracle of the differential suite and the baseline the indexed path
  must beat.
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.baselines.sase import SaseEngine
from repro.bench.workloads import (
    COMPOSITE_KINDS,
    composite_patterns,
    prepared_dataset,
)
from repro.core.engine import SequenceIndex
from repro.core.policies import Policy
from repro.kvstore import LSMStore

DATASET = "max_10000"
LENGTH = 4
PATTERNS_PER_KIND = 4


@pytest.fixture(scope="module")
def pattern_workload(tmp_path_factory):
    """One LSM-backed index and one composite workload, shared by kinds."""
    workdir = tmp_path_factory.mktemp("pattern-language")
    store = LSMStore(str(workdir / "db"), memtable_flush_bytes=256 * 1024)
    index = SequenceIndex(store, policy=Policy.STNM, query_cache_size=0)
    log = prepared_dataset(DATASET, SCALE)
    index.update(log)
    store.flush()
    workload = composite_patterns(
        log,
        count=PATTERNS_PER_KIND * len(COMPOSITE_KINDS),
        length=LENGTH,
        index=index,
    )
    yield log, index, workload
    store.close()


@pytest.mark.parametrize("kind", COMPOSITE_KINDS)
def test_indexed_pattern_queries(benchmark, pattern_workload, kind):
    _, index, workload = pattern_workload
    patterns = [p for k, p in workload if k == kind]

    def run_all():
        for pattern in patterns:
            index.detect(pattern)

    run_all()  # warm-up: block cache
    benchmark.pedantic(run_all, rounds=3, iterations=1)


@pytest.mark.parametrize("kind", COMPOSITE_KINDS)
def test_sase_oracle_pattern_queries(benchmark, pattern_workload, kind):
    log, _, workload = pattern_workload
    engine = SaseEngine(log)
    patterns = [p for k, p in workload if k == kind]

    def run_all():
        for pattern in patterns:
            engine.query(pattern)

    benchmark.pedantic(run_all, rounds=3, iterations=1)
