"""Figure 3: the three STNM flavors on uncorrelated random logs.

Paper shape: the Indexing flavor dominates (up to an order of magnitude),
Parsing grows super-linearly with the number of distinct activities
(third sweep), and State sits between them with hash-map overheads.
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.core.pairs import create_pairs
from repro.core.policies import PairMethod
from repro.logs.generator import RandomLogConfig, generate_random_log

METHODS = (PairMethod.INDEXING, PairMethod.PARSING, PairMethod.STATE)

#: (sweep label, config) -- one representative point per paper sweep axis
SWEEP_POINTS = (
    (
        "events2000",
        RandomLogConfig(
            num_traces=max(5, round(1000 * SCALE)),
            max_events_per_trace=2000,
            num_activities=500,
            seed=31,
        ),
    ),
    (
        "traces2500",
        RandomLogConfig(
            num_traces=max(5, round(2500 * SCALE)),
            max_events_per_trace=1000,
            num_activities=100,
            seed=32,
        ),
    ),
    (
        "acts1000",
        RandomLogConfig(
            num_traces=max(5, round(500 * SCALE)),
            max_events_per_trace=500,
            num_activities=1000,
            seed=33,
        ),
    ),
)

_LOG_CACHE = {}


def _log_for(label, config):
    if label not in _LOG_CACHE:
        _LOG_CACHE[label] = generate_random_log(config)
    return _LOG_CACHE[label]


@pytest.mark.parametrize("label,config", SWEEP_POINTS, ids=lambda v: v if isinstance(v, str) else "")
@pytest.mark.parametrize("method", METHODS, ids=lambda m: m.value)
def test_random_log_pair_creation(benchmark, label, config, method):
    log = _log_for(label, config)
    views = [(trace.activities, trace.timestamps) for trace in log]
    benchmark.extra_info["events"] = log.num_events

    def run():
        return [create_pairs(acts, stamps, method) for acts, stamps in views]

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(results) == len(views)
