"""Figure 4: our detection time as a function of the query pattern length.

Paper shape: response time grows roughly linearly with pattern length
(one index fetch + join per additional pattern event).
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.bench.workloads import prepared_dataset, prepared_index, stnm_patterns
from repro.core.policies import Policy

DATASET = "max_10000"


@pytest.mark.parametrize("length", (2, 4, 6, 8, 10))
def test_detection_vs_pattern_length(benchmark, length):
    log = prepared_dataset(DATASET, SCALE)
    index = prepared_index(DATASET, SCALE, Policy.STNM)
    patterns = stnm_patterns(log, length, 20, seed=length)

    def run():
        return [index.detect(p) for p in patterns]

    results = benchmark(run)
    benchmark.extra_info["matches"] = sum(len(r) for r in results)
