"""Ablation: selectivity-driven planner + batched multi_get read path.

Smoke benchmarks for the query-planner rework (runner twin:
``python -m repro.bench.runner ablation_planner``, which also writes the
``BENCH_query_planner.json`` perf-trajectory snapshot):

* the Table 8 STNM workload -- length-10 patterns containing at least one
  rare pair -- on an LSM-backed index, under every combination of planner
  on/off, batched ``multi_get`` vs loop-of-gets, postings cache on/off;
* the all-off configuration is the naive left-to-right baseline the
  planner must beat.
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.bench.workloads import prepared_dataset, rare_pair_patterns
from repro.core.engine import SequenceIndex
from repro.kvstore import LSMStore

DATASET = "max_10000"
PATTERN_LENGTH = 10
PATTERNS = 10


@pytest.fixture(scope="module")
def planner_store(tmp_path_factory):
    """One LSM store indexed once, shared by every configuration."""
    workdir = tmp_path_factory.mktemp("planner-ablation")
    store = LSMStore(str(workdir / "db"), memtable_flush_bytes=256 * 1024)
    index = SequenceIndex(store, query_cache_size=0)
    log = prepared_dataset(DATASET, SCALE)
    index.update(log)
    store.flush()
    patterns = rare_pair_patterns(log, index, PATTERN_LENGTH, PATTERNS)
    yield store, patterns
    store.close()


@pytest.mark.parametrize(
    ("planner", "batched", "cache"),
    [
        (False, False, False),
        (True, False, False),
        (False, True, False),
        (True, True, False),
        (True, True, True),
    ],
    ids=[
        "baseline-naive-loop",
        "planner-only",
        "multi-get-only",
        "planner+multi-get",
        "planner+multi-get+cache",
    ],
)
def test_stnm_rare_pair_queries(benchmark, planner_store, planner, batched, cache):
    store, patterns = planner_store
    index = SequenceIndex(
        store,
        query_cache_size=0,
        postings_cache_size=64 if cache else 0,
        planner=planner,
        batched_reads=batched,
    )

    def run_all():
        for pattern in patterns:
            index.detect(pattern)

    run_all()  # warm-up: block cache and (where enabled) postings cache
    benchmark.pedantic(run_all, rounds=3, iterations=1)
