"""Table 5: index-build time of the three STNM flavors on process-like logs.

Paper shape: all three flavors perform similarly on these datasets (the
differences that exist are small in absolute terms).
"""

from __future__ import annotations

import pytest

from conftest import CORE_DATASETS, SCALE
from repro.bench.workloads import build_index, prepared_dataset
from repro.core.policies import PairMethod, Policy

METHODS = (PairMethod.INDEXING, PairMethod.PARSING, PairMethod.STATE)


@pytest.mark.parametrize("name", CORE_DATASETS)
@pytest.mark.parametrize("method", METHODS, ids=lambda m: m.value)
def test_stnm_index_build(benchmark, name, method):
    log = prepared_dataset(name, SCALE)
    benchmark.extra_info["events"] = log.num_events
    index = benchmark.pedantic(
        lambda: build_index(log, Policy.STNM, method), rounds=3, iterations=1
    )
    assert index.trace_ids()
