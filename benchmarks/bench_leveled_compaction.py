"""Ablation: leveled vs size-tiered compaction under sustained ingest.

Smoke benchmarks for the leveled-compaction rework (runner twin:
``python -m repro.bench.runner leveled_compaction``, which runs the
full-scale workload and writes the ``BENCH_leveled_compaction.json``
write-amplification snapshot):

* sustained partition-rotating ingest through the feed pipeline, per
  strategy, with write amplification and trivial-move counts recorded in
  ``extra_info``;
* reopen latency of the grown multi-level store, lazy (manifest +
  footers only) vs eager (index/bloom materialised up front).

The strict leveled-below-size-tiered write-amp comparison lives in the
runner experiment, which ingests enough days for size-tiered's
second-generation merges to fire; at smoke scale this suite only checks
the mechanisms (compactions run, cold partitions sink as manifest-only
moves, lazy reopen touches no data blocks).
"""

from __future__ import annotations

import random

import pytest

from conftest import SCALE
from repro.core.engine import SequenceIndex
from repro.core.model import Event
from repro.ingest import EngineSink, FeedWriter, TailIngester
from repro.kvstore import LSMStore, LeveledConfig

DAYS = 4
TRACES_PER_DAY = max(10, int(150 * SCALE))
EVENTS_PER_TRACE = 8

STRATEGIES = ["size_tiered", "leveled"]


def _leveled_config() -> LeveledConfig:
    return LeveledConfig(
        l0_compact_tables=4,
        base_level_bytes=32 * 1024,
        fanout=8,
        max_output_bytes=16 * 1024,
        grandparent_limit_factor=2,
    )


def _day_events(day: int) -> list[Event]:
    rng = random.Random(f"leveled-bench-day-{day}")
    activities = [f"a{j:02d}" for j in range(12)]
    events: list[Event] = []
    for t in range(TRACES_PER_DAY):
        trace_id = f"{day:02d}-{t:06d}"
        clock = float(day * 1_000_000 + t)
        for _ in range(EVENTS_PER_TRACE):
            clock += rng.randint(1, 3)
            events.append(Event(trace_id, rng.choice(activities), clock))
    return events


def _open_store(path, strategy: str) -> LSMStore:
    kwargs = {"leveled": _leveled_config()} if strategy == "leveled" else {}
    return LSMStore(
        str(path),
        memtable_flush_bytes=8 * 1024,
        compaction=strategy,
        **kwargs,
    )


def _ingest(workdir, strategy: str) -> LSMStore:
    store = _open_store(workdir / "db", strategy)
    engine = SequenceIndex(store, query_cache_size=0)
    for day in range(DAYS):
        feed = str(workdir / f"day{day:02d}.jsonl")
        with FeedWriter(feed) as writer:
            writer.append(_day_events(day))
        ingester = TailIngester(
            feed,
            EngineSink(engine, partition=f"day-{day:02d}"),
            feed + ".ckpt",
            batch_events=64,
        )
        ingester.drain()
        ingester.close()
    while store.compact():
        pass
    return store


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sustained_ingest(benchmark, tmp_path, strategy):
    def run():
        workdir = tmp_path / f"{strategy}-{run.counter}"
        run.counter += 1
        workdir.mkdir()
        store = _ingest(workdir, strategy)
        metrics = store.metrics.snapshot()
        store.close()
        return metrics

    run.counter = 0
    metrics = benchmark.pedantic(run, rounds=3, iterations=1)
    assert metrics["flushes"] > 0
    assert metrics["compactions"] > 0
    flushed = metrics["flush_bytes_written"]
    benchmark.extra_info["write_amp"] = (
        metrics["compaction_bytes_rewritten"] / flushed if flushed else 0.0
    )
    benchmark.extra_info["compactions"] = metrics["compactions"]
    benchmark.extra_info["moves"] = metrics["compaction_moves"]


def test_cold_partitions_sink_as_moves(tmp_path):
    store = _ingest(tmp_path, "leveled")
    try:
        metrics = store.metrics.snapshot()
        storage = store.storage_stats()
        # The rotating partitions leave cold key-disjoint regions behind;
        # the planner must sink at least some of them without a rewrite.
        assert metrics["compaction_moves"] > 0
        assert storage["level_count"] >= 2
    finally:
        store.close()


@pytest.mark.parametrize("lazy", [True, False], ids=["lazy", "eager"])
def test_reopen_latency(benchmark, tmp_path, lazy):
    store = _ingest(tmp_path, "leveled")
    tables = len(store.storage_stats()["sstables"])
    store.close()
    assert tables > 1

    def reopen():
        reopened = LSMStore(
            str(tmp_path / "db"), lazy_open=lazy, auto_compact=False
        )
        metrics = reopened.metrics.snapshot()
        reopened.close()
        return metrics

    metrics = benchmark.pedantic(reopen, rounds=5, iterations=1)
    benchmark.extra_info["sstables"] = tables
    if lazy:
        # The manifest-only contract: no data block is read at open.
        assert metrics["block_reads"] == 0
        assert metrics["lazy_meta_loads"] == 0
