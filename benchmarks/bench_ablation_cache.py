"""Ablation: the serving layer's caches.

Smoke benchmarks for the two caches added with the concurrent serving
layer (the runner twin is ``python -m repro.bench.runner ablation_cache``):

* **block cache on/off** -- point-read latency against a flushed LSM store;
  warm reads should be served from parsed in-memory blocks, not pread+parse;
* **query cache on/off** -- repeated ``detect()`` latency on an unchanged
  index; hits bypass detection entirely.
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.bench.workloads import prepared_dataset, stnm_patterns
from repro.core.engine import SequenceIndex
from repro.kvstore import LSMStore

DATASET = "max_1000"
READS = 500


def _indexed_store(tmp_path, cache_bytes: int):
    store = LSMStore(
        str(tmp_path / f"db-{cache_bytes}"),
        memtable_flush_bytes=64 * 1024,
        block_cache_bytes=cache_bytes,
    )
    index = SequenceIndex(store, query_cache_size=0)
    index.update(prepared_dataset(DATASET, SCALE))
    store.flush()
    return store, index


@pytest.mark.parametrize(
    "cache_bytes",
    [8 * 1024 * 1024, 0],
    ids=["block-cache-on", "block-cache-off"],
)
def test_point_reads(benchmark, tmp_path, cache_bytes):
    store, index = _indexed_store(tmp_path, cache_bytes)
    trace_ids = index.trace_ids()
    probes = [trace_ids[i % len(trace_ids)] for i in range(READS)]

    def read_all():
        for trace_id in probes:
            store.get("seq", trace_id)

    read_all()  # warm-up: "cache on" should measure hits, not first touches
    benchmark.pedantic(read_all, rounds=3, iterations=1)
    index.close()


@pytest.mark.parametrize(
    "cache_size", [128, 0], ids=["query-cache-on", "query-cache-off"]
)
def test_repeated_detect(benchmark, cache_size):
    log = prepared_dataset(DATASET, SCALE)
    index = SequenceIndex(query_cache_size=cache_size)
    index.update(log)
    pattern = stnm_patterns(log, length=3, count=1)[0]
    index.detect(pattern)  # warm-up / cache fill
    benchmark.pedantic(lambda: index.detect(pattern), rounds=3, iterations=1)
    index.close()
