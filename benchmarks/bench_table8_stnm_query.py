"""Table 8: STNM query response -- Elasticsearch-like vs SASE vs ours.

Paper shape: SASE (no pre-processing) degrades by orders of magnitude on
large logs; our index wins short patterns; the Elasticsearch-style engine
catches up on long patterns.
"""

from __future__ import annotations

import pytest

from conftest import CORE_DATASETS, SCALE
from repro.baselines.elastic import ElasticIndex
from repro.baselines.sase import SaseEngine
from repro.bench.workloads import prepared_dataset, prepared_index, stnm_patterns
from repro.core.policies import Policy

LENGTHS = (2, 5, 10)

_ELASTIC_CACHE = {}


def _elastic(name):
    if name not in _ELASTIC_CACHE:
        _ELASTIC_CACHE[name] = ElasticIndex.from_log(prepared_dataset(name, SCALE))
    return _ELASTIC_CACHE[name]


@pytest.mark.parametrize("name", CORE_DATASETS)
@pytest.mark.parametrize("length", LENGTHS)
def test_stnm_query_elasticsearch(benchmark, name, length):
    elastic = _elastic(name)
    patterns = stnm_patterns(prepared_dataset(name, SCALE), length, 20, seed=length)
    benchmark(lambda: [elastic.span_search(p) for p in patterns])


@pytest.mark.parametrize("name", CORE_DATASETS)
@pytest.mark.parametrize("length", LENGTHS)
def test_stnm_query_sase(benchmark, name, length):
    log = prepared_dataset(name, SCALE)
    sase = SaseEngine(log)
    patterns = stnm_patterns(log, length, 20, seed=length)
    benchmark(lambda: [sase.query(p) for p in patterns])


@pytest.mark.parametrize("name", CORE_DATASETS)
@pytest.mark.parametrize("length", LENGTHS)
def test_stnm_query_ours(benchmark, name, length):
    log = prepared_dataset(name, SCALE)
    index = prepared_index(name, SCALE, Policy.STNM)
    patterns = stnm_patterns(log, length, 20, seed=length)
    benchmark(lambda: [index.detect(p) for p in patterns])
