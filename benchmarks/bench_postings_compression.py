"""Ablation: postings delta/varint codec + SSTable block compression + mmap.

Smoke benchmarks for the compressed-storage rework (runner twin:
``python -m repro.bench.runner postings_compression``, which also writes
the ``BENCH_postings_compression.json`` perf-trajectory snapshot):

* decode throughput of the Index partitions -- a full scan-and-splice --
  with the postings codec on vs off and block compression none vs zlib;
* the Table 8 rare-pair query workload per storage configuration;
* warm-cache point reads served by ``mmap`` vs ``pread`` (block cache
  disabled so every get physically loads its block).
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.bench.workloads import prepared_dataset, rare_pair_patterns
from repro.core.engine import SequenceIndex
from repro.core.postings import decode_index_value
from repro.kvstore import LSMStore

DATASET = "max_10000"
PATTERN_LENGTH = 10
PATTERNS = 10
POINT_READS = 500

CONFIGS = [
    (False, None, False),
    (True, None, False),
    (False, "zlib", False),
    (True, "zlib", False),
    (True, "zlib", True),
]
CONFIG_IDS = [
    "baseline",
    "codec-only",
    "zlib-only",
    "codec+zlib",
    "codec+zlib+mmap",
]


def _build(workdir, codec, compression, use_mmap):
    store = LSMStore(
        str(workdir / "db"),
        memtable_flush_bytes=256 * 1024,
        compression=compression,
        mmap=use_mmap,
    )
    index = SequenceIndex(store, query_cache_size=0, postings_codec=codec)
    index.update(prepared_dataset(DATASET, SCALE))
    store.flush()
    return store, index


@pytest.mark.parametrize(("codec", "compression", "use_mmap"), CONFIGS, ids=CONFIG_IDS)
def test_index_decode_throughput(benchmark, tmp_path, codec, compression, use_mmap):
    store, index = _build(tmp_path, codec, compression, use_mmap)
    tables = [t for t in store.list_tables() if t.split(":")[0] == "index"]

    def decode_all():
        total = 0
        for table in tables:
            for _, value in store.scan(table):
                total += len(decode_index_value(value))
        return total

    assert decode_all() > 0  # warm-up: block cache / page cache
    benchmark.pedantic(decode_all, rounds=3, iterations=1)
    index.close()


@pytest.mark.parametrize(("codec", "compression", "use_mmap"), CONFIGS, ids=CONFIG_IDS)
def test_stnm_rare_pair_queries(benchmark, tmp_path, codec, compression, use_mmap):
    store, index = _build(tmp_path, codec, compression, use_mmap)
    log = prepared_dataset(DATASET, SCALE)
    patterns = rare_pair_patterns(log, index, PATTERN_LENGTH, PATTERNS)

    def run_all():
        for pattern in patterns:
            index.detect(pattern)

    run_all()  # warm-up
    benchmark.pedantic(run_all, rounds=3, iterations=1)
    index.close()


@pytest.mark.parametrize("use_mmap", [False, True], ids=["pread", "mmap"])
def test_warm_cache_point_reads(benchmark, tmp_path, use_mmap):
    store, index = _build(tmp_path, True, "zlib", use_mmap)
    trace_ids = index.trace_ids()
    index.close()
    # Block cache off: every get physically loads its block, isolating the
    # mmap-vs-pread difference on a warm page cache.
    reopened = LSMStore(str(tmp_path / "db"), block_cache_bytes=0, mmap=use_mmap)
    probes = [trace_ids[i % len(trace_ids)] for i in range(POINT_READS)]

    def read_all():
        for trace_id in probes:
            reopened.get("seq", trace_id)

    read_all()  # warm the page cache
    benchmark.pedantic(read_all, rounds=3, iterations=1)
    reopened.close()
