"""Figure 5: Accurate vs Fast continuation time vs pattern length.

Paper shape: Accurate grows with pattern length like detection does;
Fast is flat (it reads only pre-computed statistics).
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.bench.workloads import prepared_dataset, prepared_index, stnm_patterns
from repro.core.policies import Policy

DATASET = "max_10000"
LENGTHS = (1, 2, 4, 6)


@pytest.mark.parametrize("length", LENGTHS)
def test_continuation_accurate(benchmark, length):
    log = prepared_dataset(DATASET, SCALE)
    index = prepared_index(DATASET, SCALE, Policy.STNM)
    patterns = stnm_patterns(log, length, 3, seed=50 + length)
    benchmark(lambda: [index.continuations(p, mode="accurate") for p in patterns])


@pytest.mark.parametrize("length", LENGTHS)
def test_continuation_fast(benchmark, length):
    log = prepared_dataset(DATASET, SCALE)
    index = prepared_index(DATASET, SCALE, Policy.STNM)
    patterns = stnm_patterns(log, length, 3, seed=50 + length)
    benchmark(lambda: [index.continuations(p, mode="fast") for p in patterns])
