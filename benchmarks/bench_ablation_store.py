"""Ablation: design choices of the storage layer.

DESIGN.md calls out two decisions the paper's architecture rests on:

* **blind merge-writes vs read-modify-write** for the append-heavy Index
  table -- merge operators are what make batch updates O(batch), not
  O(index);
* **durable LSM store vs in-memory dict** -- the price of durability for
  the same workload.
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.bench.workloads import build_index, prepared_dataset
from repro.core.policies import Policy
from repro.kvstore import InMemoryStore, LSMStore

DATASET = "max_1000"


def _index_workload(store):
    store.create_table("idx", merge_operator="list_append")
    for i in range(2000):
        store.merge("idx", ("A", f"B{i % 20}"), [(f"t{i}", i, i + 1)])
    return store


def _rmw_workload(store):
    store.create_table("idx")
    for i in range(2000):
        key = ("A", f"B{i % 20}")
        entries = store.get("idx", key, [])
        entries.append((f"t{i}", i, i + 1))
        store.put("idx", key, entries)
    return store


def test_merge_writes(benchmark):
    benchmark.pedantic(
        lambda: _index_workload(InMemoryStore()), rounds=3, iterations=1
    )


def test_read_modify_write(benchmark):
    benchmark.pedantic(lambda: _rmw_workload(InMemoryStore()), rounds=3, iterations=1)


def test_index_build_memory_store(benchmark):
    log = prepared_dataset(DATASET, SCALE)
    benchmark.pedantic(lambda: build_index(log, Policy.STNM), rounds=3, iterations=1)


def test_index_build_lsm_store(benchmark, tmp_path):
    log = prepared_dataset(DATASET, SCALE)
    counter = iter(range(1_000_000))

    def run():
        from repro.core.engine import SequenceIndex

        store = LSMStore(str(tmp_path / f"ix{next(counter)}"))
        index = SequenceIndex(store, policy=Policy.STNM)
        index.update(log)
        index.flush()
        store.close()

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("backend", ("serial", "process"))
def test_index_build_executor(benchmark, backend):
    """Parallelisation-by-design: per-trace pair creation across cores."""
    from repro.executor import ParallelExecutor

    log = prepared_dataset(DATASET, SCALE)
    executor = (
        ParallelExecutor.serial()
        if backend == "serial"
        else ParallelExecutor(backend="process", max_workers=4)
    )
    benchmark.pedantic(
        lambda: build_index(log, Policy.STNM, executor=executor),
        rounds=2,
        iterations=1,
    )
