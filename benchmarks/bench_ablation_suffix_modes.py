"""Ablation: the [19] baseline's measured profile vs its best implementation.

DESIGN.md documents that the paper's Table 6 numbers for [19] reflect a
stored-subtrees implementation (``materialized`` mode: every per-trace
suffix explicitly stored and content-sorted, Σ L² work) rather than a
modern suffix array (``array`` mode: prefix-doubling, O(n log² n)).  This
bench quantifies the gap on a long-trace log -- the regime where the paper
reports [19] collapsing.
"""

from __future__ import annotations

import pytest

from conftest import SCALE
from repro.baselines.suffix import SuffixArrayMatcher
from repro.bench.workloads import contiguous_patterns, prepared_dataset

DATASET = "bpi_2017"  # longest traces of the registry


@pytest.mark.parametrize("mode", ("materialized", "array"))
def test_suffix_preprocess_mode(benchmark, mode):
    log = prepared_dataset(DATASET, SCALE)
    matcher = benchmark.pedantic(
        lambda: SuffixArrayMatcher(log, mode=mode), rounds=3, iterations=1
    )
    benchmark.extra_info["text_length"] = matcher.stats.text_length


@pytest.mark.parametrize("mode", ("materialized", "array"))
def test_suffix_query_mode(benchmark, mode):
    """Query cost is mode-independent -- both binary-search the same order."""
    log = prepared_dataset(DATASET, SCALE)
    matcher = SuffixArrayMatcher(log, mode=mode)
    patterns = contiguous_patterns(log, 3, 20, seed=3)
    results = benchmark(lambda: [matcher.detect(p) for p in patterns])
    assert any(results)
