"""Shared configuration of the pytest-benchmark suites.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Dataset sizes default to a small fraction
of the paper's (so the whole suite completes in minutes) and honour the
``REPRO_BENCH_SCALE`` environment variable::

    pytest benchmarks/ --benchmark-only                    # quick pass
    REPRO_BENCH_SCALE=0.25 pytest benchmarks/ --benchmark-only

The paper-shaped summary tables come from the companion runner::

    python -m repro.bench.runner table6 fig4 --scale 0.1
"""

from __future__ import annotations

import pytest

from repro.logs.datasets import bench_scale

#: fraction of the paper's dataset sizes used by the benchmark suites
SCALE = bench_scale(default=0.02)

#: datasets exercised by the per-dataset benchmark matrices (a representative
#: small / medium / process-like subset; the runner covers all ten)
CORE_DATASETS = ("max_1000", "min_10000", "bpi_2013", "bpi_2017")


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE
